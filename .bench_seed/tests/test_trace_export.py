"""Tests for trace export (JSONL / Chrome), queries, and diffing."""

import json

import numpy as np
import pytest

from repro.config import CSM_POLL, TMK_MC_POLL, RunConfig
from repro.core import Program, SharedArray, run_program
from repro.harness.cli import main
from repro.stats.export import (
    PP_TRACK_OFFSET,
    TRACE_SCHEMA_VERSION,
    TraceRun,
    chrome_trace,
    export_runs,
    read_jsonl,
    run_metadata,
    write_chrome,
    write_jsonl,
)
from repro.stats.trace import TraceEvent, Tracer, diff_traces


def handoff_program():
    def setup(space, params):
        arr = SharedArray.alloc(space, "x", np.float64, (1024,))
        arr.initialize(np.zeros(1024))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        yield from env.lock_acquire(0)
        yield from arr.put(env, 8 * env.rank, float(env.rank))
        yield from env.lock_release(0)
        yield from env.barrier(0)
        value = yield from arr.get(env, 8 * ((env.rank + 1) % env.nprocs))
        assert value == float((env.rank + 1) % env.nprocs)
        yield from env.barrier(1)
        env.stop_timer()
        return None

    return Program("handoff", setup, worker)


@pytest.fixture(scope="module")
def traced_results():
    out = {}
    for variant in (CSM_POLL, TMK_MC_POLL):
        out[variant.name] = run_program(
            handoff_program(),
            RunConfig(variant=variant, nprocs=4, trace=True),
            {},
        )
    return out


@pytest.fixture(scope="module")
def runs(traced_results):
    return [
        TraceRun.from_result(result, scale="tiny")
        for result in traced_results.values()
    ]


# ---------------------------------------------------------------------------
# run metadata
# ---------------------------------------------------------------------------

def test_run_metadata_is_self_describing(traced_results):
    meta = run_metadata(traced_results["csm_poll"], scale="tiny")
    assert meta["type"] == "run"
    assert meta["schema"] == TRACE_SCHEMA_VERSION
    assert meta["program"] == "handoff"
    assert meta["variant"] == "csm_poll"
    assert meta["system"] == "cashmere"
    assert meta["nprocs"] == 4
    assert meta["scale"] == "tiny"
    assert meta["cluster"]["page_size"] > 0
    assert meta["costs"]  # full cost-model constants
    assert set(meta["flags"]) == {
        "warm_start", "first_touch_homes", "exclusive_mode",
        "write_double_dummy", "remote_reads", "weak_state",
    }
    assert meta["exec_time_us"] > 0
    assert meta["events"] == len(traced_results["csm_poll"].trace)
    assert meta["counters"]["read_faults"] >= 0
    assert "user" in meta["breakdown_us"]


def test_trace_run_requires_trace():
    import types

    bare = types.SimpleNamespace(trace=None, program="handoff")
    with pytest.raises(ValueError, match="no trace"):
        TraceRun.from_result(bare)


def test_untraced_run_exports_empty_timeline():
    result = run_program(
        handoff_program(), RunConfig(variant=CSM_POLL, nprocs=2), {}
    )
    run = TraceRun.from_result(result)
    assert run.events == []
    assert run.meta["events"] == 0


# ---------------------------------------------------------------------------
# JSONL: lossless round trip
# ---------------------------------------------------------------------------

def test_jsonl_round_trip_preserves_every_event(runs, tmp_path):
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(runs, path)
    back = read_jsonl(path)
    assert len(back) == len(runs)
    for original, loaded in zip(runs, back):
        assert loaded.meta["variant"] == original.meta["variant"]
        assert len(loaded.events) == len(original.events)
        for a, b in zip(original.events, loaded.events):
            assert a == b  # time, pid, kind, details, dur — all of it


def test_jsonl_lines_are_typed_json(runs, tmp_path):
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(runs[0], path)  # a single run is accepted too
    with open(path) as stream:
        records = [json.loads(line) for line in stream]
    assert records[0]["type"] == "run"
    assert all(r["type"] == "event" for r in records[1:])
    assert len(records) == 1 + len(runs[0].events)


def test_read_jsonl_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "mystery"}\n')
    with pytest.raises(ValueError, match="unknown record type"):
        read_jsonl(str(bad))
    orphan = tmp_path / "orphan.jsonl"
    orphan.write_text('{"type": "event", "ts": 0, "pid": 0, "kind": "x"}\n')
    with pytest.raises(ValueError, match="event before any run"):
        read_jsonl(str(orphan))


def test_loaded_run_supports_queries(runs, tmp_path):
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(runs, path)
    tracer = read_jsonl(path)[0].tracer()
    assert tracer.counts() == runs[0].tracer().counts()
    assert tracer.spans("barrier")
    assert tracer.page_history(0)


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

def test_chrome_trace_is_valid_json(runs, tmp_path):
    path = str(tmp_path / "trace.json")
    write_chrome(runs, path)
    with open(path) as stream:
        doc = json.load(stream)
    assert "traceEvents" in doc
    assert doc["otherData"]["schema"] == TRACE_SCHEMA_VERSION
    assert len(doc["otherData"]["runs"]) == len(runs)


def test_chrome_ts_non_decreasing_per_track(runs):
    doc = chrome_trace(runs)
    last = {}
    for record in doc["traceEvents"]:
        if record["ph"] == "M":
            continue
        track = (record["pid"], record["tid"])
        assert record["ts"] >= last.get(track, float("-inf"))
        last[track] = record["ts"]
    assert last  # there were body events


def test_chrome_structure(runs):
    doc = chrome_trace(runs)
    events = doc["traceEvents"]
    # One viewer process per run, named after the run.
    names = [
        e["args"]["name"] for e in events if e.get("name") == "process_name"
    ]
    assert names == [run.label for run in runs]
    # One named thread per simulated processor.
    threads = {
        (e["pid"], e["args"]["name"])
        for e in events
        if e.get("name") == "thread_name"
    }
    for run_index in range(len(runs)):
        for pid in range(4):
            assert (run_index, f"p{pid}") in threads
    # Spans are complete events with durations; instants are instants.
    body = [e for e in events if e["ph"] in ("X", "i")]
    assert any(e["ph"] == "X" and e["dur"] > 0 for e in body)
    assert any(e["ph"] == "i" and e["s"] == "t" for e in body)


def test_chrome_protocol_processor_track():
    run = TraceRun(
        meta={"nprocs": 4, "program": "x", "variant": "v"},
        events=[TraceEvent(1.0, -1, "write_notice", (("page", 1),))],
    )
    doc = chrome_trace(run)
    body = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert body[0]["tid"] == PP_TRACK_OFFSET + 4
    names = {
        e["args"]["name"] for e in doc["traceEvents"]
        if e.get("name") == "thread_name"
    }
    assert "protocol processors" in names


def test_export_runs_dispatch(runs, tmp_path):
    export_runs(runs, str(tmp_path / "a.jsonl"), format="jsonl")
    export_runs(runs, str(tmp_path / "a.json"), format="chrome")
    with pytest.raises(ValueError, match="unknown trace format"):
        export_runs(runs, str(tmp_path / "a.xml"), format="xml")


# ---------------------------------------------------------------------------
# disabled tracer cost
# ---------------------------------------------------------------------------

def test_disabled_emit_is_one_branch():
    tracer = Tracer(enabled=False)
    tracer._sorted = sentinel = [TraceEvent(0.0, 0, "sentinel")]
    tracer.emit(1.0, 0, "read_fault", page=3)
    # The disabled path returned before touching any state: no event
    # recorded, and not even the sort cache was invalidated.
    assert tracer.events == []
    assert tracer._sorted is sentinel


# ---------------------------------------------------------------------------
# timeline queries
# ---------------------------------------------------------------------------

def test_between_is_half_open():
    tracer = Tracer(enabled=True)
    for t in (1.0, 2.0, 3.0):
        tracer.emit(t, 0, "tick")
    assert [e.time for e in tracer.between(1.0, 3.0)] == [1.0, 2.0]


def test_spans_sort_by_start_time():
    tracer = Tracer(enabled=True)
    tracer.emit(5.0, 0, "read_fault", page=1)
    # The span *ends* later but started first; emitted after the instant.
    tracer.emit(2.0, 0, "compute", dur=10.0)
    assert [e.kind for e in tracer.timeline()] == ["compute", "read_fault"]
    assert tracer.spans() == [tracer.timeline()[0]]
    assert tracer.timeline()[0].end == 12.0


def test_lock_chain_shows_token_migration(traced_results):
    chain = traced_results["tmk_mc_poll"].trace.lock_chain(0)
    kinds = {e.kind for e in chain}
    assert "lock_acquire" in kinds
    assert "lock_grant" in kinds  # LRC token passing carries records
    assert all(e.get("lock") == 0 for e in chain)
    assert len({e.pid for e in chain if e.kind == "lock_acquire"}) == 4


def test_page_history_tells_the_coherence_story(traced_results):
    trace = traced_results["csm_poll"].trace
    page = trace.of_kind("write_fault")[0].get("page")
    kinds = [e.kind for e in trace.page_history(page)]
    assert "write_fault" in kinds
    assert "read_fault" in kinds


# ---------------------------------------------------------------------------
# cross-protocol diffing
# ---------------------------------------------------------------------------

def test_diff_traces_aligns_on_barriers(traced_results):
    csm = traced_results["csm_poll"].trace
    tmk = traced_results["tmk_mc_poll"].trace
    diff = diff_traces(csm, tmk, "csm_poll", "tmk_mc_poll")
    # 4 processors x 2 program barriers, aligned pairwise.
    assert len(diff.sync_points) == 8
    assert {s.pid for s in diff.sync_points} == {0, 1, 2, 3}
    # Protocol-specific kinds land on the right side.
    assert "page_transfer" in diff.only_a
    assert "diff_create" in diff.only_b
    # Shared program structure: same number of barrier episodes.
    assert diff.delta("barrier") == 0
    rendered = diff.render()
    assert "csm_poll" in rendered and "largest skew" in rendered


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_trace_subcommand_chrome(tmp_path, capsys):
    out = str(tmp_path / "sor.json")
    assert main([
        "trace", "sor", "--scale", "tiny", "--procs", "2",
        "--variants", "csm_poll", "--trace-out", out, "--format", "chrome",
    ]) == 0
    printed = capsys.readouterr().out
    assert "sor under csm_poll" in printed
    with open(out) as stream:
        doc = json.load(stream)
    assert doc["otherData"]["runs"][0]["variant"] == "csm_poll"
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])


def test_cli_trace_two_variants_prints_diff(tmp_path, capsys):
    out = str(tmp_path / "sor.jsonl")
    assert main([
        "trace", "sor", "--scale", "tiny", "--procs", "2",
        "--variants", "csm_poll", "tmk_mc_poll",
        "--trace-out", out, "--limit", "5",
    ]) == 0
    printed = capsys.readouterr().out
    assert "trace diff: csm_poll vs tmk_mc_poll" in printed
    runs = read_jsonl(out)
    assert [r.meta["variant"] for r in runs] == ["csm_poll", "tmk_mc_poll"]
    assert all(r.meta["scale"] == "tiny" for r in runs)
    assert all(r.events for r in runs)


def test_cli_global_trace_out_on_run(tmp_path, capsys):
    out = str(tmp_path / "run.jsonl")
    assert main([
        "run", "sor", "--scale", "tiny", "--procs", "2",
        "--variant", "tmk_mc_poll", "--trace-out", out,
    ]) == 0
    capsys.readouterr()
    (run,) = read_jsonl(out)
    assert run.meta["variant"] == "tmk_mc_poll"
    assert run.events
