"""Behavioural tests for the TreadMarks protocol via small programs."""

import numpy as np
import pytest

from repro.config import (
    TMK_MC_INT,
    TMK_MC_POLL,
    TMK_UDP_INT,
    RunConfig,
)
from repro.core import Program, SharedArray, run_program


def simple_program(worker):
    def setup(space, params):
        arr = SharedArray.alloc(space, "data", np.float64, (4096,))
        arr.initialize(np.zeros(4096))
        return {"arr": arr}

    return Program("probe", setup, worker)


def run(worker, nprocs=2, variant=TMK_MC_POLL, **overrides):
    return run_program(
        simple_program(worker),
        RunConfig(variant=variant, nprocs=nprocs, **overrides),
        {},
    )


def test_twin_created_on_first_write():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 0, 1.0)
            yield from arr.put(env, 1, 2.0)  # same interval: no new twin
        yield from env.barrier(0)
        env.stop_timer()
        return None

    result = run(worker)
    assert result.stats[0].reported_counters["twins_created"] == 1


def test_diff_moves_only_changed_words():
    """TreadMarks' key advantage on sparse data (Ilink): diffs carry the
    changed words, not whole pages."""

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 0, 5.0)  # one word of an 8 KB page
        yield from env.barrier(0)
        if env.rank == 1:
            value = yield from arr.get(env, 0)
            assert value == 5.0
        yield from env.barrier(1)
        env.stop_timer()
        return None

    # Warm start isolates the steady state from the cold page fetch.
    result = run(worker, warm_start=True)
    agg = result.stats.aggregate_counters()
    assert agg["diffs_created"] == 1
    # All protocol messages together are far less than one page.
    assert agg["data_bytes"] < 2048


def test_barrier_propagates_write_notices():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 10, 1.5)
        yield from env.barrier(0)
        value = yield from arr.get(env, 10)
        yield from env.barrier(1)
        env.stop_timer()
        return value

    result = run(worker, nprocs=4)
    assert all(v == 1.5 for v in result.values)


def test_lock_transfer_carries_intervals():
    order = []

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from env.lock_acquire(0)
            yield from arr.put(env, 0, 7.0)
            yield from env.lock_release(0)
            yield from env.barrier(0)
        else:
            yield from env.barrier(0)
            yield from env.lock_acquire(0)
            value = yield from arr.get(env, 0)
            order.append(value)
            yield from env.lock_release(0)
        env.stop_timer()
        return None

    run(worker)
    assert order == [7.0]


def test_lock_reacquire_by_owner_is_free():
    def worker(env, shared, params):
        if env.rank == 0:
            for _ in range(10):
                yield from env.lock_acquire(0)
                yield from env.lock_release(0)
        env.stop_timer()
        return None
        yield  # pragma: no cover - keeps this a generator for rank 1

    result = run(worker)
    # Re-acquiring a cached lock sends no messages (manager is rank 0).
    assert result.stats[0].reported_counters["messages"] == 0


def test_lock_chain_serializes_rmw():
    """The canonical migratory pattern: no lost updates."""

    def worker(env, shared, params):
        arr = shared["arr"]
        for _ in range(4):
            yield from env.lock_acquire(3)
            value = yield from arr.get(env, 0)
            yield from arr.put(env, 0, value + 1.0)
            yield from env.lock_release(3)
        yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.get(env, 0))
        return None

    result = run(worker, nprocs=8)
    assert result.values[0] == 32.0


def test_concurrent_false_sharing_merges():
    def worker(env, shared, params):
        arr = shared["arr"]
        yield from arr.put(env, env.rank, float(env.rank + 1))
        yield from env.barrier(0)
        out = yield from arr.read_range(env, 0, env.nprocs)
        env.stop_timer()
        return list(out)

    result = run(worker, nprocs=8)
    expected = [float(r + 1) for r in range(8)]
    for values in result.values:
        assert values == expected


def test_flags_transfer_consistency():
    seen = []

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 50, 9.0)
            yield from env.flag_set(0)  # owner is rank 0 (= 0 % nprocs)
        else:
            yield from env.flag_wait(0)
            seen.append((yield from arr.get(env, 50)))
        yield from env.barrier(0)
        env.stop_timer()
        return None

    run(worker, nprocs=4)
    assert seen == [9.0, 9.0, 9.0]


def test_flag_set_by_wrong_owner_rejected():
    def worker(env, shared, params):
        if env.rank == 1:
            yield from env.flag_set(0)  # flag 0 belongs to rank 0
        yield from env.barrier(0)
        env.stop_timer()
        return None

    with pytest.raises(RuntimeError, match="must be set by its owner"):
        run(worker)


def test_cumulative_diff_regression_guard():
    """Regression test for the lost-update bug: an old concurrent diff
    arriving after a newer one must not regress the word (found via the
    Water accumulation pattern)."""

    def worker(env, shared, params):
        arr = shared["arr"]
        P = env.nprocs
        for _ in range(2):
            for victim in range(P):
                target = (env.rank + victim) % P
                yield from env.lock_acquire(target)
                value = yield from arr.get(env, target)
                yield from arr.put(env, target, value + 1.0)
                yield from env.lock_release(target)
            yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_range(env, 0, P))
        return None

    result = run(worker, nprocs=16)
    assert list(result.values[0]) == [32.0] * 16


@pytest.mark.parametrize("variant", [TMK_MC_POLL, TMK_MC_INT, TMK_UDP_INT])
def test_udp_and_interrupt_variants_correct(variant):
    def worker(env, shared, params):
        arr = shared["arr"]
        yield from arr.put(env, env.rank * 100, float(env.rank))
        yield from env.barrier(0)
        total = 0.0
        for r in range(env.nprocs):
            total += (yield from arr.get(env, r * 100))
        yield from env.barrier(1)
        env.stop_timer()
        return total

    result = run(worker, nprocs=4, variant=variant)
    assert all(v == 6.0 for v in result.values)


def test_vts_invariants_checked_after_run():
    def worker(env, shared, params):
        arr = shared["arr"]
        for it in range(3):
            yield from arr.put(env, env.rank, float(it))
            yield from env.barrier(0)
        env.stop_timer()
        return None

    # run_program calls protocol.check_invariants() at completion.
    run(worker, nprocs=4)


def test_warm_start_skips_cold_fetches():
    def worker(env, shared, params):
        arr = shared["arr"]
        _ = yield from arr.read_range(env, 0, 4096)
        yield from env.barrier(0)
        env.stop_timer()
        return None

    cold = run(worker, nprocs=4)
    warm = run(worker, nprocs=4, warm_start=True)
    assert warm.stats.total("page_fetches") == 0
    assert cold.stats.total("page_fetches") > 0
    assert warm.exec_time < cold.exec_time
