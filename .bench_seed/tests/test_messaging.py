"""Unit tests for the request/response messaging layer."""

import pytest

from repro.config import ClusterConfig, CostModel, Mechanism, Transport
from repro.cluster.machine import Cluster
from repro.cluster.messaging import LOCAL_MSG_LATENCY, Messenger
from repro.cluster.network import MemoryChannel
from repro.sim import Engine
from repro.stats import Category, StatsBoard


def build(transport=Transport.MEMORY_CHANNEL, placement=((0, 0), (1, 0))):
    engine = Engine()
    stats = StatsBoard(len(placement))
    cfg = ClusterConfig()
    costs = CostModel()
    cluster = Cluster(
        engine, cfg, costs, Mechanism.POLL, list(placement), stats
    )
    network = MemoryChannel(engine, cfg, costs)
    messenger = Messenger(engine, cluster, network, costs, transport)
    return engine, cluster, messenger, stats, network


def echo_server(messenger):
    def server(proc, request):
        yield from messenger.reply(
            proc, request, payload=("echo", request.payload), size=64
        )

    return server


def test_request_reply_roundtrip():
    engine, cluster, messenger, stats, _ = build()
    cluster.proc(1).server = echo_server(messenger)
    got = []

    def requester():
        reply = yield from messenger.request(
            cluster.proc(0), cluster.proc(1), "ping", payload=42, size=8
        )
        got.append((engine.now, reply))

    def idle_target():
        yield from cluster.proc(1).wait(engine.event().succeed())

    engine.process(requester())
    engine.process(cluster.proc(1).serve_forever(), daemon=True)
    engine.run()
    assert got[0][1] == ("echo", 42)
    assert got[0][0] > 0


def test_message_and_byte_counters():
    engine, cluster, messenger, stats, _ = build()
    cluster.proc(1).server = echo_server(messenger)

    def requester():
        yield from messenger.request(
            cluster.proc(0), cluster.proc(1), "ping", payload=1, size=100
        )

    engine.process(requester())
    engine.process(cluster.proc(1).serve_forever(), daemon=True)
    engine.run()
    costs = CostModel()
    assert stats[0].counters["messages"] == 1
    assert stats[1].counters["messages"] == 1
    assert stats[0].counters["data_bytes"] == 100 + costs.msg_header
    assert stats[1].counters["data_bytes"] == 64 + costs.msg_header


def test_same_node_messages_skip_network():
    engine, cluster, messenger, stats, network = build(
        placement=((0, 0), (0, 1))
    )
    cluster.proc(1).server = echo_server(messenger)

    def requester():
        yield from messenger.request(
            cluster.proc(0), cluster.proc(1), "ping", payload=1, size=4096
        )

    engine.process(requester())
    engine.process(cluster.proc(1).serve_forever(), daemon=True)
    engine.run()
    assert network.aggregate_bytes == 0  # never touched the wire


def test_cross_node_messages_use_network():
    engine, cluster, messenger, stats, network = build()
    cluster.proc(1).server = echo_server(messenger)

    def requester():
        yield from messenger.request(
            cluster.proc(0), cluster.proc(1), "ping", payload=1, size=4096
        )

    engine.process(requester())
    engine.process(cluster.proc(1).serve_forever(), daemon=True)
    engine.run()
    assert network.aggregate_bytes > 4096


def test_udp_transport_costs_more_cpu():
    def total_time(transport):
        engine, cluster, messenger, stats, _ = build(transport)
        cluster.proc(1).server = echo_server(messenger)

        def requester():
            yield from messenger.request(
                cluster.proc(0), cluster.proc(1), "ping", payload=1, size=8
            )

        engine.process(requester())
        engine.process(cluster.proc(1).serve_forever(), daemon=True)
        engine.run()
        return engine.now

    assert total_time(Transport.UDP) > total_time(Transport.MEMORY_CHANNEL)


def test_double_reply_rejected():
    engine, cluster, messenger, stats, _ = build()

    def bad_server(proc, request):
        yield from messenger.reply(proc, request, payload=1, size=8)
        yield from messenger.reply(proc, request, payload=2, size=8)

    cluster.proc(1).server = bad_server

    def requester():
        yield from messenger.request(
            cluster.proc(0), cluster.proc(1), "ping", payload=1, size=8
        )

    engine.process(requester())
    engine.process(cluster.proc(1).serve_forever(), daemon=True)
    with pytest.raises(RuntimeError, match="already replied"):
        engine.run()


def test_forward_reaches_third_party():
    engine3 = Engine()
    stats = StatsBoard(3)
    cfg = ClusterConfig()
    costs = CostModel()
    cluster = Cluster(
        engine3, cfg, costs, Mechanism.POLL, [(0, 0), (1, 0), (2, 0)], stats
    )
    network = MemoryChannel(engine3, cfg, costs)
    messenger = Messenger(
        engine3, cluster, network, costs, Transport.MEMORY_CHANNEL
    )

    def middleman(proc, request):
        yield from messenger.forward(proc, cluster.proc(2), request)

    def endpoint(proc, request):
        yield from messenger.reply(proc, request, payload="from-p2", size=8)

    cluster.proc(1).server = middleman
    cluster.proc(2).server = endpoint
    got = []

    def requester():
        reply = yield from messenger.request(
            cluster.proc(0), cluster.proc(1), "chase", payload=1, size=8
        )
        got.append(reply)

    engine3.process(requester())
    engine3.process(cluster.proc(1).serve_forever(), daemon=True)
    engine3.process(cluster.proc(2).serve_forever(), daemon=True)
    engine3.run()
    assert got == ["from-p2"]


def test_post_request_allows_overlap():
    engine, cluster, messenger, stats, _ = build(
        placement=((0, 0), (1, 0), (2, 0))
    )
    for pid in (1, 2):
        cluster.proc(pid).server = echo_server(messenger)
        engine.process(cluster.proc(pid).serve_forever(), daemon=True)
    got = []

    def requester():
        r1 = yield from messenger.post_request(
            cluster.proc(0), cluster.proc(1), "a", payload=1, size=8
        )
        r2 = yield from messenger.post_request(
            cluster.proc(0), cluster.proc(2), "b", payload=2, size=8
        )
        v1 = yield from cluster.proc(0).wait(r1.reply_event)
        v2 = yield from cluster.proc(0).wait(r2.reply_event)
        got.append((v1, v2))

    engine.process(requester())
    engine.run()
    assert got == [(("echo", 1), ("echo", 2))]
