"""Tests for the ASCII figure renderers."""

import pytest

from repro.harness import plots
from repro.harness.figure6 import BreakdownBar
from repro.stats import Category


def test_line_chart_contains_series_marks():
    chart = plots.line_chart(
        {"csm": {1: 1.0, 8: 6.0}, "tmk": {1: 0.9, 8: 5.0}},
        title="demo",
    )
    assert "demo" in chart
    assert "o=csm" in chart
    assert "x=tmk" in chart
    assert "processors" in chart


def test_line_chart_rejects_empty():
    with pytest.raises(ValueError):
        plots.line_chart({"empty": {}})


def test_line_chart_x_positions_ordered():
    chart = plots.line_chart({"s": {1: 1.0, 2: 2.0, 32: 20.0}})
    tick_line = [l for l in chart.splitlines() if "32" in l][0]
    assert tick_line.index("1") < tick_line.index("2") < tick_line.index("32")


def test_stacked_bar_length_tracks_total():
    full = plots.stacked_bar([0.5, 0.5], ["user", "wait"], width=40)
    half = plots.stacked_bar([0.25, 0.25], ["user", "wait"], width=40)
    assert full.count("U") + full.count("W") == pytest.approx(40, abs=1)
    assert half.count("U") + half.count("W") == pytest.approx(20, abs=1)
    assert "0.50" in half


def test_stacked_bar_validates_lengths():
    with pytest.raises(ValueError):
        plots.stacked_bar([0.5], ["a", "b"])


def test_breakdown_chart():
    normalized = {
        Category.USER: 0.4,
        Category.POLL: 0.05,
        Category.WDOUBLE: 0.15,
        Category.PROTOCOL: 0.2,
        Category.COMM_WAIT: 0.2,
    }
    bars = [
        BreakdownBar(app="sor", system="CSM", nprocs=32, normalized=normalized),
        BreakdownBar(
            app="sor",
            system="TMK",
            nprocs=32,
            normalized={**normalized, Category.WDOUBLE: 0.0},
        ),
    ]
    chart = plots.breakdown_chart(bars)
    assert "sor" in chart and "CSM" in chart and "TMK" in chart
    assert "U=user" in chart
    # Cashmere's bar contains write-doubling cells; TreadMarks' doesn't.
    lines = chart.splitlines()
    csm_line = next(l for l in lines if "CSM" in l)
    tmk_line = next(l for l in lines if "TMK" in l)
    assert "W" in csm_line.split("|")[1]
    assert "W" not in tmk_line.split("|")[1]
