"""Tests for the program runner, Env, and RunResult plumbing."""

import numpy as np
import pytest

from repro.config import (
    CSM_POLL,
    TMK_MC_POLL,
    ClusterConfig,
    CostModel,
    RunConfig,
    WorkingSet,
)
from repro.core import Program, SharedArray, run_program, run_sequential
from repro.stats import Category


def trivial_program(worker):
    def setup(space, params):
        arr = SharedArray.alloc(space, "x", np.float64, (64,))
        arr.initialize(np.zeros(64))
        return {"arr": arr}

    return Program("trivial", setup, worker)


def test_run_result_fields():
    def worker(env, shared, params):
        yield from env.compute(100.0)
        env.stop_timer()
        return env.rank

    result = run_program(
        trivial_program(worker), RunConfig(variant=CSM_POLL, nprocs=4), {}
    )
    assert result.program == "trivial"
    assert result.values == [0, 1, 2, 3]
    assert result.exec_time >= 100.0
    assert result.config.nprocs == 4


def test_speedup_over():
    def worker(env, shared, params):
        yield from env.compute(1000.0)
        env.stop_timer()
        return None

    seq = run_sequential(trivial_program(worker), {})
    par = run_program(
        trivial_program(worker), RunConfig(variant=CSM_POLL, nprocs=2), {}
    )
    assert par.speedup_over(seq.exec_time) == pytest.approx(
        seq.exec_time / par.exec_time
    )


def test_stop_timer_excludes_epilogue():
    def worker(env, shared, params):
        arr = shared["arr"]
        yield from env.compute(50.0)
        env.stop_timer()
        if env.rank == 0:
            # Epilogue faults on the whole array: not reported.
            _ = yield from arr.read_all(env)
        return None

    result = run_program(
        trivial_program(worker), RunConfig(variant=CSM_POLL, nprocs=2), {}
    )
    assert result.exec_time < 100.0
    assert result.stats[0].reported_counters["read_faults"] == 0


def test_params_passed_through():
    captured = {}

    def setup(space, params):
        captured["setup"] = params["value"]
        arr = SharedArray.alloc(space, "x", np.float64, (8,))
        arr.initialize(np.zeros(8))
        return {"arr": arr}

    def worker(env, shared, params):
        captured["worker"] = params["value"]
        yield from env.compute(1.0)
        env.stop_timer()
        return None

    run_program(
        Program("p", setup, worker),
        RunConfig(variant=CSM_POLL, nprocs=1),
        {"value": 99},
    )
    assert captured == {"setup": 99, "worker": 99}


def test_compute_with_working_set_inflates_cashmere():
    costs = CostModel()
    ws = WorkingSet(primary=costs.l1_bytes, doubled=costs.l1_bytes)

    def worker(env, shared, params):
        yield from env.compute(1000.0, ws=ws)
        env.stop_timer()
        return None

    result = run_program(
        trivial_program(worker), RunConfig(variant=CSM_POLL, nprocs=1), {}
    )
    assert result.stats[0].reported_time[Category.WDOUBLE] > 0
    assert result.exec_time > 1000.0

    tmk = run_program(
        trivial_program(worker), RunConfig(variant=TMK_MC_POLL, nprocs=1), {}
    )
    # TreadMarks declares no twin pressure here: no inflation.
    assert tmk.stats[0].reported_time[Category.USER] == pytest.approx(1000.0)


def test_sequential_pays_inherent_cache_cost():
    costs = CostModel()
    big = WorkingSet(primary=4 * costs.l1_bytes)
    small = WorkingSet(primary=1024)

    def make(ws):
        def worker(env, shared, params):
            yield from env.compute(1000.0, ws=ws)
            env.stop_timer()
            return None

        return trivial_program(worker)

    slow = run_sequential(make(big), {})
    fast = run_sequential(make(small), {})
    assert slow.exec_time > fast.exec_time


def test_sequential_ignores_polls():
    def worker(env, shared, params):
        yield from env.compute(100.0, polls=100000)
        env.stop_timer()
        return None

    seq = run_sequential(trivial_program(worker), {})
    assert seq.exec_time == pytest.approx(100.0)


def test_custom_placement_respected():
    def worker(env, shared, params):
        yield from env.compute(1.0)
        env.stop_timer()
        return env.proc.node.nid

    result = run_program(
        trivial_program(worker),
        RunConfig(variant=CSM_POLL, nprocs=2),
        {},
        placement=[(5, 0), (5, 1)],
    )
    assert result.values == [5, 5]


def test_worker_exception_propagates():
    def worker(env, shared, params):
        yield from env.compute(1.0)
        raise RuntimeError("application bug")

    with pytest.raises(RuntimeError, match="application bug"):
        run_program(
            trivial_program(worker), RunConfig(variant=CSM_POLL, nprocs=1), {}
        )


def test_network_bytes_reported():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 0, 1.0)
        yield from env.barrier(0)
        if env.rank == 1:
            _ = yield from arr.get(env, 0)
        yield from env.barrier(1)
        env.stop_timer()
        return None

    result = run_program(
        trivial_program(worker), RunConfig(variant=CSM_POLL, nprocs=2), {}
    )
    assert result.network_bytes > 0


def test_smaller_cluster_config():
    cluster = ClusterConfig(n_nodes=2, cpus_per_node=2, page_size=4096)

    def worker(env, shared, params):
        yield from env.compute(10.0)
        env.stop_timer()
        return env.proc.node.nid

    result = run_program(
        trivial_program(worker),
        RunConfig(variant=CSM_POLL, nprocs=4, cluster=cluster),
        {},
    )
    assert sorted(set(result.values)) == [0, 1]
