"""Unit tests for statistics accounting and the Figure 6 breakdown."""

import pytest

from repro.stats import Breakdown, Category, ProcStats, StatsBoard


def test_charge_and_total():
    stats = ProcStats(0)
    stats.charge(Category.USER, 10.0)
    stats.charge(Category.PROTOCOL, 5.0)
    assert stats.total_time == 15.0


def test_negative_charge_rejected():
    stats = ProcStats(0)
    with pytest.raises(ValueError):
        stats.charge(Category.USER, -1.0)


def test_counters():
    stats = ProcStats(0)
    stats.bump("read_faults")
    stats.bump("read_faults", 3)
    assert stats.counters["read_faults"] == 4


def test_freeze_snapshots_state():
    stats = ProcStats(0)
    stats.charge(Category.USER, 10.0)
    stats.bump("messages", 2)
    stats.freeze(now=123.0)
    # Post-freeze activity (the verification epilogue) is not reported.
    stats.charge(Category.PROTOCOL, 100.0)
    stats.bump("messages", 50)
    assert stats.finish_time == 123.0
    assert stats.reported_time[Category.PROTOCOL] == 0.0
    assert stats.reported_counters["messages"] == 2
    assert stats.total_time == 10.0


def test_unfrozen_reports_live():
    stats = ProcStats(0)
    stats.charge(Category.USER, 7.0)
    assert stats.reported_time[Category.USER] == 7.0
    assert not stats.frozen


def test_board_aggregation():
    board = StatsBoard(3)
    for pid in range(3):
        board[pid].charge(Category.USER, 10.0 * (pid + 1))
        board[pid].bump("messages", pid)
        board[pid].finish_time = 100.0 * (pid + 1)
    assert board.total_time(Category.USER) == 60.0
    assert board.total("messages") == 3
    assert board.finish_time == 300.0
    assert board.aggregate_counters()["messages"] == 3


def test_breakdown_fractions_sum_to_one():
    board = StatsBoard(2)
    board[0].charge(Category.USER, 30.0)
    board[0].charge(Category.COMM_WAIT, 10.0)
    board[1].charge(Category.USER, 40.0)
    board[1].charge(Category.PROTOCOL, 20.0)
    breakdown = Breakdown.from_stats(board)
    fractions = breakdown.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions[Category.USER] == pytest.approx(0.7)


def test_breakdown_normalized_against_reference():
    board = StatsBoard(1)
    board[0].charge(Category.USER, 50.0)
    breakdown = Breakdown.from_stats(board)
    normalized = breakdown.normalized(100.0)
    assert normalized[Category.USER] == pytest.approx(0.5)


def test_breakdown_normalized_rejects_zero_reference():
    board = StatsBoard(1)
    with pytest.raises(ValueError):
        Breakdown.from_stats(board).normalized(0.0)


def test_empty_breakdown_fractions():
    board = StatsBoard(1)
    fractions = Breakdown.from_stats(board).fractions()
    assert all(v == 0.0 for v in fractions.values())
