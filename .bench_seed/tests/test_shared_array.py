"""Unit tests for SharedArray using the (free) sequential protocol."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.runtime.env import Env
from repro.core.runtime.sequential import SequentialProtocol
from repro.core.runtime.shared import SharedArray
from repro.cluster.machine import Cluster
from repro.config import ClusterConfig, CostModel, Mechanism
from repro.memory import AddressSpace
from repro.sim import Engine
from repro.stats import StatsBoard


def make_env(page_size=1024):
    engine = Engine()
    space = AddressSpace(page_size)
    stats = StatsBoard(1)
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=1, cpus_per_node=1, page_size=page_size),
        CostModel(),
        Mechanism.INTERRUPT,
        [(0, 0)],
        stats,
    )
    env = Env(0, 1, cluster.proc(0), SequentialProtocol(space))
    return engine, space, env


def drive(engine, gen):
    """Run one generator to completion inside the engine."""
    out = {}

    def runner():
        out["value"] = yield from gen
        return None

    engine.process(runner())
    engine.run()
    return out.get("value")


def test_alloc_and_shape():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "m", np.float64, (4, 8))
    assert arr.size == 32
    assert arr.shape == (4, 8)


def test_bad_shape_rejected():
    engine, space, env = make_env()
    with pytest.raises(ValueError):
        SharedArray.alloc(space, "bad", np.float64, (0, 8))


def test_array_too_big_for_region_rejected():
    engine, space, env = make_env()
    region = space.alloc("tiny", 64)  # page-aligned to 1024 bytes
    with pytest.raises(ValueError, match="does not fit"):
        SharedArray(region, np.float64, (200,))


def test_roundtrip_range():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "v", np.float64, (100,))
    arr.initialize(np.zeros(100))
    payload = np.arange(50, dtype=np.float64)

    def work():
        yield from arr.write_range(env, 25, payload)
        out = yield from arr.read_range(env, 25, 50)
        return out

    out = drive(engine, work())
    assert np.array_equal(out, payload)


def test_rows_roundtrip_across_pages():
    engine, space, env = make_env(page_size=256)
    arr = SharedArray.alloc(space, "m", np.float64, (16, 16))  # 2 KB
    arr.initialize(np.zeros((16, 16)))
    block = np.arange(48, dtype=np.float64).reshape(3, 16)

    def work():
        yield from arr.write_rows(env, 5, block)
        out = yield from arr.read_rows(env, 5, 8)
        return out

    out = drive(engine, work())
    assert np.array_equal(out, block)


def test_get_put_element():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "m", np.float64, (4, 4))
    arr.initialize(np.zeros((4, 4)))

    def work():
        yield from arr.put(env, (2, 3), 7.5)
        value = yield from arr.get(env, (2, 3))
        return value

    assert drive(engine, work()) == 7.5


def test_index_bounds_checked():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "m", np.float64, (4, 4))

    def work():
        yield from arr.get(env, (4, 0))

    with pytest.raises(IndexError):
        drive(engine, work())


def test_range_bounds_checked():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "v", np.float64, (10,))

    def work():
        yield from arr.read_range(env, 5, 10)

    with pytest.raises(IndexError):
        drive(engine, work())


def test_row_block_shape_checked():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "m", np.float64, (4, 4))

    def work():
        yield from arr.write_rows(env, 0, np.zeros((2, 5)))

    with pytest.raises(ValueError, match="does not match"):
        drive(engine, work())


def test_read_all_matches_initialize():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "m", np.int64, (6, 7))
    data = np.arange(42).reshape(6, 7)
    arr.initialize(data)

    def work():
        return (yield from arr.read_all(env))

    assert np.array_equal(drive(engine, work()), data)


def test_initialize_broadcast_scalar():
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "m", np.float64, (3, 3))
    arr.initialize(5.0)

    def work():
        return (yield from arr.read_all(env))

    assert np.array_equal(drive(engine, work()), np.full((3, 3), 5.0))


def test_pages_for_rows():
    engine, space, env = make_env(page_size=256)
    arr = SharedArray.alloc(space, "m", np.float64, (16, 16))
    # One row = 128 bytes; a 256-byte page holds two rows.
    assert arr.pages_for_rows(0, 2) == [0]
    assert arr.pages_for_rows(0, 3) == [0, 1]


@given(
    start=st.integers(0, 63),
    count=st.integers(1, 64),
)
def test_range_roundtrip_property(start, count):
    if start + count > 64:
        count = 64 - start
        if count == 0:
            return
    engine, space, env = make_env(page_size=128)
    arr = SharedArray.alloc(space, "v", np.float64, (64,))
    arr.initialize(np.zeros(64))
    payload = np.arange(count, dtype=np.float64) + start

    def work():
        yield from arr.write_range(env, start, payload)
        return (yield from arr.read_range(env, start, count))

    assert np.array_equal(drive(engine, work()), payload)


# -- edge cases, exercised with the fast path on and off --------------------


@pytest.fixture(params=[True, False], ids=["fastpath", "legacy"])
def fastpath_mode(request):
    from repro.core import fastpath

    saved = fastpath.ENABLED
    fastpath.set_enabled(request.param)
    yield request.param
    fastpath.set_enabled(saved)


def test_get_put_at_page_boundary(fastpath_mode):
    """Single elements straddling a page edge: the last element of one
    page and the first of the next."""
    engine, space, env = make_env(page_size=1024)  # 128 f64 per page
    arr = SharedArray.alloc(space, "v", np.float64, (300,))
    arr.initialize(np.zeros(300))

    def work():
        for elem in (127, 128, 255, 256, 0, 299):
            yield from arr.put(env, elem, float(elem) + 0.5)
        got = []
        for elem in (127, 128, 255, 256, 0, 299):
            got.append((yield from arr.get(env, elem)))
        return got

    assert drive(engine, work()) == [
        127.5, 128.5, 255.5, 256.5, 0.5, 299.5
    ]


def test_write_range_multipage_noncontiguous_input(fastpath_mode):
    """A strided (non-contiguous) values array written across several
    pages must land exactly as its contiguous copy would."""
    engine, space, env = make_env(page_size=256)  # 32 f64 per page
    arr = SharedArray.alloc(space, "v", np.float64, (200,))
    arr.initialize(np.zeros(200))
    backing = np.arange(180, dtype=np.float64)
    strided = backing[::2]  # 90 elements, stride 16 bytes
    assert not strided.flags["C_CONTIGUOUS"]

    def work():
        yield from arr.write_range(env, 7, strided)  # spans ~4 pages
        return (yield from arr.read_range(env, 0, 200))

    out = drive(engine, work())
    expected = np.zeros(200)
    expected[7:97] = backing[::2]
    assert np.array_equal(out, expected)


def test_write_rows_2d_noncontiguous_input(fastpath_mode):
    engine, space, env = make_env(page_size=256)
    arr = SharedArray.alloc(space, "m", np.float64, (16, 16))
    arr.initialize(np.zeros((16, 16)))
    big = np.arange(16 * 32, dtype=np.float64).reshape(16, 32)
    block = big[2:5, ::2]  # non-contiguous 3x16 view

    def work():
        yield from arr.write_rows(env, 5, block)
        return (yield from arr.read_rows(env, 5, 8))

    assert np.array_equal(drive(engine, work()), np.ascontiguousarray(block))


@pytest.mark.parametrize(
    "index",
    [(-1, 0), (0, -1), (4, 0), (0, 4), (3, 99)],
    ids=["neg-row", "neg-col", "row-over", "col-over", "col-way-over"],
)
def test_get_put_out_of_bounds(fastpath_mode, index):
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "m", np.float64, (4, 4))
    arr.initialize(np.zeros((4, 4)))

    def get():
        yield from arr.get(env, index)

    def put():
        yield from arr.put(env, index, 1.0)

    with pytest.raises(IndexError):
        drive(engine, get())
    with pytest.raises(IndexError):
        drive(engine, put())


@pytest.mark.parametrize(
    "start,count",
    [(-1, 2), (8, 3), (10, 1), (0, 11)],
    ids=["neg-start", "tail-over", "at-end", "count-over"],
)
def test_range_out_of_bounds(fastpath_mode, start, count):
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "v", np.float64, (10,))
    arr.initialize(np.zeros(10))

    def read():
        yield from arr.read_range(env, start, count)

    with pytest.raises(IndexError):
        drive(engine, read())

    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "v", np.float64, (10,))
    arr.initialize(np.zeros(10))

    def write():
        yield from arr.write_range(env, start, np.zeros(count))

    with pytest.raises(IndexError):
        drive(engine, write())


def test_zero_length_range_at_end(fastpath_mode):
    """A zero-length range at the end is legal, not out of bounds."""
    engine, space, env = make_env()
    arr = SharedArray.alloc(space, "v", np.float64, (10,))
    arr.initialize(np.zeros(10))

    def empty():
        return (yield from arr.read_range(env, 10, 0))

    assert drive(engine, empty()).size == 0
