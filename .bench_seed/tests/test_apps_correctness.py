"""Integration: every application's parallel result matches its
sequential (unlinked) execution, for both DSM systems."""

import numpy as np
import pytest

from repro.config import (
    ALL_VARIANTS,
    CSM_POLL,
    CSM_PP,
    TMK_MC_POLL,
    TMK_UDP_INT,
    RunConfig,
)
from repro.core import run_program, run_sequential
from repro.apps import registry

from tests.helpers import run_app_everywhere, values_match

POLLING = (CSM_POLL, TMK_MC_POLL)
EXTENDED = (CSM_PP, TMK_UDP_INT)


@pytest.mark.parametrize("app_name", registry.APP_NAMES)
def test_app_polling_variants_match_sequential(app_name):
    module = registry.load(app_name)
    failures = run_app_everywhere(module, "tiny", POLLING, (2, 4, 8))
    assert not failures, f"{app_name} diverged: {failures}"


@pytest.mark.parametrize("app_name", ("sor", "water", "gauss", "barnes"))
def test_app_extended_variants_match_sequential(app_name):
    module = registry.load(app_name)
    failures = run_app_everywhere(module, "tiny", EXTENDED, (4, 8))
    assert not failures, f"{app_name} diverged: {failures}"


@pytest.mark.parametrize("app_name", ("sor", "ilink"))
def test_app_at_16_processors(app_name):
    module = registry.load(app_name)
    failures = run_app_everywhere(module, "tiny", POLLING, (16,))
    assert not failures, f"{app_name} diverged at 16 procs: {failures}"


def test_gauss_solves_the_system():
    from repro.apps import gauss

    params = gauss.default_params("tiny")
    seq = run_sequential(gauss.program(), params)
    x = seq.values[0][0]
    assert np.allclose(x, gauss.reference(params))


def test_tsp_finds_optimum_in_parallel():
    from repro.apps import tsp

    params = tsp.default_params("tiny")
    optimum = tsp.reference(params)
    for variant in (CSM_POLL, TMK_MC_POLL):
        result = run_program(
            tsp.program(), RunConfig(variant=variant, nprocs=4), params
        )
        length, path = result.values[0]
        assert length == pytest.approx(optimum)
        # The tour must be a permutation starting at city 0.
        assert sorted(path) == list(range(params["cities"]))
        assert path[0] == 0


def test_lu_factors_the_matrix():
    from repro.apps import lu

    params = lu.default_params("tiny")
    seq = run_sequential(lu.program(), params)
    n, block = params["n"], params["block"]
    nb = n // block
    packed = seq.values[0].reshape(nb, nb, block, block)
    dense_lu = packed.swapaxes(1, 2).reshape(n, n)
    lower = np.tril(dense_lu, -1) + np.eye(n)
    upper = np.triu(dense_lu)
    from repro.apps.common import deterministic_rng

    rng = deterministic_rng(1997)
    original = rng.random((n, n)) + np.eye(n) * n
    assert np.allclose(lower @ upper, original, rtol=1e-8)


def test_barnes_positions_evolve():
    from repro.apps import barnes

    params = barnes.default_params("tiny")
    seq = run_sequential(barnes.program(), params)
    final = seq.values[0]
    from repro.apps.common import deterministic_rng

    rng = deterministic_rng(1997)
    initial = rng.random((params["n_bodies"], 3)) * 2.0 - 1.0
    assert not np.allclose(final[:, 0:3], initial)  # bodies moved


def test_water_and_em3d_warm_start_match():
    """warm_start changes timing, never data."""
    from repro.apps import em3d

    params = em3d.default_params("tiny")
    seq = run_sequential(em3d.program(), params)
    warm = run_program(
        em3d.program(),
        RunConfig(variant=TMK_MC_POLL, nprocs=8, warm_start=True),
        params,
    )
    assert values_match(seq.values[0], warm.values[0])


def test_registry_knows_all_eight_apps():
    assert len(registry.APPS) == 8
    assert set(registry.APP_NAMES) == {
        "sor",
        "lu",
        "water",
        "tsp",
        "gauss",
        "ilink",
        "em3d",
        "barnes",
    }
    for name in registry.APP_NAMES:
        module = registry.load(name)
        assert hasattr(module, "program")
        assert hasattr(module, "default_params")
        assert registry.spec(name).name == name


def test_registry_unknown_app_rejected():
    with pytest.raises(ValueError, match="unknown application"):
        registry.load("quicksort")
    with pytest.raises(ValueError, match="unknown application"):
        registry.spec("quicksort")
