"""Tests for the protocol event tracer."""

import numpy as np

from repro.config import CSM_POLL, TMK_MC_POLL, RunConfig
from repro.core import Program, SharedArray, run_program
from repro.stats.trace import TraceEvent, Tracer


def handoff_program():
    def setup(space, params):
        arr = SharedArray.alloc(space, "x", np.float64, (1024,))
        arr.initialize(np.zeros(1024))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 0, 42.0)
        yield from env.barrier(0)
        if env.rank == 1:
            value = yield from arr.get(env, 0)
            assert value == 42.0
        yield from env.barrier(1)
        env.stop_timer()
        return None

    return Program("handoff", setup, worker)


def test_tracer_unit_api():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, 0, "read_fault", page=3)
    tracer.emit(2.0, 1, "diff_apply", page=3, writer=0)
    tracer.emit(3.0, 1, "read_fault", page=4)
    assert len(tracer) == 3
    assert tracer.counts() == {"read_fault": 2, "diff_apply": 1}
    assert len(tracer.of_kind("read_fault")) == 2
    assert len(tracer.for_pid(1)) == 2
    assert len(tracer.for_page(3)) == 2
    assert tracer.events[0].get("page") == 3
    assert tracer.events[0].get("missing", "x") == "x"
    assert "read_fault" in str(tracer.events[0])
    assert "p1" in tracer.render(limit=2)


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, 0, "read_fault")
    assert len(tracer) == 0


def test_trace_off_by_default():
    result = run_program(
        handoff_program(), RunConfig(variant=CSM_POLL, nprocs=2), {}
    )
    assert result.trace is not None
    assert len(result.trace) == 0


def test_cashmere_trace_story():
    result = run_program(
        handoff_program(),
        RunConfig(variant=CSM_POLL, nprocs=2, trace=True),
        {},
    )
    counts = result.trace.counts()
    assert counts["write_fault"] >= 1
    assert counts["home_assigned"] >= 1
    assert counts["page_transfer"] >= 1
    # Rank 0 is the only sharer at its release: the page goes exclusive.
    assert counts["exclusive_enter"] >= 1
    # The transfer happens at rank 1 for page 0, after rank 0's fault.
    transfer = result.trace.of_kind("page_transfer")[0]
    fault = result.trace.of_kind("write_fault")[0]
    assert transfer.pid == 1 and fault.pid == 0
    assert transfer.time > fault.time


def test_treadmarks_trace_story():
    result = run_program(
        handoff_program(),
        RunConfig(variant=TMK_MC_POLL, nprocs=2, trace=True),
        {},
    )
    counts = result.trace.counts()
    assert counts["twin"] == 1
    assert counts["diff_create"] == 1
    assert counts["diff_apply"] == 1
    assert counts["interval_close"] >= 1
    assert counts["page_fetch"] >= 1  # rank 1's cold first touch
    create = result.trace.of_kind("diff_create")[0]
    apply_ = result.trace.of_kind("diff_apply")[0]
    assert create.pid == 0 and apply_.pid == 1
    assert create.time <= apply_.time
    # Only one word changed: the diff carries 8 bytes.
    assert create.get("bytes") == 8


def test_trace_event_ordering_is_chronological():
    result = run_program(
        handoff_program(),
        RunConfig(variant=TMK_MC_POLL, nprocs=2, trace=True),
        {},
    )
    times = [e.time for e in result.trace]
    assert times == sorted(times)
