"""Protocol fuzzing: randomly generated race-free SPMD programs must
produce identical data under every protocol variant.

Hypothesis generates small programs from two templates:

* *barrier-phased*: each round assigns every slot-write to exactly one
  rank (so writes are race-free), separated by barriers, with random
  cross-rank reads verified against a straightforward reference
  interpretation;
* *lock-phased*: a random schedule of lock-protected read-modify-write
  increments.

Any divergence between a protocol's data and the reference is a
coherence bug, and shrinking gives a minimal failing schedule.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import (
    CSM_POLL,
    HLRC_POLL,
    TMK_MC_POLL,
    TMK_UDP_INT,
    CSM_INT,
    CSM_PP,
    RunConfig,
)
from repro.core import Program, SharedArray, run_program

SLOTS = 192  # spread across pages when page_size is small
VARIANTS = (CSM_POLL, CSM_INT, CSM_PP, TMK_MC_POLL, TMK_UDP_INT, HLRC_POLL)

write_rounds = st.lists(
    st.lists(
        st.tuples(
            st.integers(0, SLOTS - 1),  # slot
            st.integers(0, 3),  # writer rank
            st.floats(-100, 100, allow_nan=False),  # value
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=4,
)


def make_barrier_program(rounds):
    """One writer per slot per round (deduplicated), all ranks read all
    written slots after each barrier."""
    cleaned = []
    for round_writes in rounds:
        seen = set()
        unique = []
        for slot, writer, value in round_writes:
            if slot in seen:
                continue
            seen.add(slot)
            unique.append((slot, writer, value))
        cleaned.append(unique)

    def setup(space, params):
        arr = SharedArray.alloc(space, "fuzz", np.float64, (SLOTS,))
        arr.initialize(np.zeros(SLOTS))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        expected = {}
        for round_writes in cleaned:
            for slot, writer, value in round_writes:
                if writer % env.nprocs == env.rank:
                    yield from arr.put(env, slot, value)
                expected[slot] = value
            yield from env.barrier(0)
            for slot, value in expected.items():
                got = yield from arr.get(env, slot)
                assert got == value, (
                    f"rank {env.rank} slot {slot}: {got} != {value}"
                )
            yield from env.barrier(1)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_all(env))
        return None

    reference = np.zeros(SLOTS)
    for round_writes in cleaned:
        for slot, _writer, value in round_writes:
            reference[slot] = value
    return Program("fuzz_barrier", setup, worker), reference


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rounds=write_rounds, data=st.data())
def test_barrier_phased_fuzz(rounds, data):
    variant = data.draw(st.sampled_from(VARIANTS))
    nprocs = data.draw(st.sampled_from([2, 4, 8]))
    program, reference = make_barrier_program(rounds)
    result = run_program(
        program, RunConfig(variant=variant, nprocs=nprocs), {}
    )
    assert np.array_equal(result.values[0], reference), variant.name


lock_schedule = st.lists(
    st.tuples(
        st.integers(0, 3),  # acting rank
        st.integers(0, 7),  # lock/slot
        st.integers(1, 9),  # increment
    ),
    min_size=1,
    max_size=24,
)


def make_lock_program(schedule, nprocs):
    """A fixed global schedule of lock-protected increments; each step
    is executed by exactly one rank."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "locked", np.float64, (64,))
        arr.initialize(np.zeros(64))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        for rank, lock, amount in schedule:
            if rank % env.nprocs != env.rank:
                continue
            yield from env.lock_acquire(lock)
            value = yield from arr.get(env, lock)
            yield from arr.put(env, lock, value + amount)
            yield from env.lock_release(lock)
        yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_range(env, 0, 8))
        return None

    reference = np.zeros(8)
    for _rank, lock, amount in schedule:
        reference[lock] += amount
    return Program("fuzz_lock", setup, worker), reference


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=lock_schedule, data=st.data())
def test_lock_phased_fuzz(schedule, data):
    variant = data.draw(st.sampled_from(VARIANTS))
    nprocs = data.draw(st.sampled_from([2, 4]))
    program, reference = make_lock_program(schedule, nprocs)
    result = run_program(
        program, RunConfig(variant=variant, nprocs=nprocs), {}
    )
    assert np.array_equal(result.values[0], reference), variant.name


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
def test_mixed_locks_and_barriers(variant):
    """A fixed dense schedule mixing both synchronization styles."""
    schedule = [(i % 4, (i * 3) % 8, 1 + i % 5) for i in range(40)]
    program, reference = make_lock_program(schedule, 8)

    result = run_program(
        program, RunConfig(variant=variant, nprocs=8), {}
    )
    assert np.array_equal(result.values[0], reference)
