"""Cross-protocol equivalence: every variant must produce identical data
on the paper's characteristic sharing patterns."""

import numpy as np
import pytest

from repro.config import ALL_VARIANTS, EXTENSION_VARIANTS, RunConfig
from repro.core import Program, SharedArray, run_program, run_sequential

from tests.helpers import values_match

PATTERN_PROCS = (2, 4, 8, 16)


def make_false_sharing_program():
    """Many writers interleaved within pages (Barnes-like)."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "cells", np.float64, (2048,))
        arr.initialize(np.zeros(2048))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        slots = list(range(0, 2048, 8))  # fixed global work list
        for it in range(3):
            for pos, idx in enumerate(slots):
                if pos % env.nprocs != env.rank:
                    continue
                yield from arr.put(env, idx, it * 1000.0 + idx)
            yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_all(env))
        return None

    return Program("false_sharing", setup, worker)


def make_producer_consumer_program():
    """Flag-synchronized pipeline (Gauss-like)."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "stages", np.float64, (64, 16))
        arr.initialize(np.zeros((64, 16)))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        for stage in range(16):
            owner = stage % env.nprocs
            if owner == env.rank:
                if stage == 0:
                    row = np.arange(16, dtype=np.float64)
                else:
                    prev = yield from arr.read_rows(env, stage - 1, stage)
                    row = prev[0] * 2.0 + 1.0
                yield from arr.write_rows(env, stage, row[np.newaxis, :])
                yield from env.flag_set(stage)
            else:
                yield from env.flag_wait(stage)
        yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_rows(env, 15, 16))
        return None

    return Program("producer_consumer", setup, worker)


def make_migratory_program():
    """Lock-protected read-modify-write chains (Water-like)."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "state", np.float64, (64,))
        arr.initialize(np.zeros(64))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        # A fixed global schedule of lock-protected increments; each step
        # is executed by exactly one rank, so the final values do not
        # depend on the processor count.
        for step in range(48):
            if step % env.nprocs != env.rank:
                continue
            slot = step % 8
            yield from env.lock_acquire(slot)
            value = yield from arr.get(env, slot)
            yield from arr.put(env, slot, value + step + 1)
            yield from env.lock_release(slot)
        yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_all(env))
        return None

    return Program("migratory", setup, worker)


def make_sparse_update_program():
    """Few words dirtied per page (Ilink-like)."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "sparse", np.float64, (8192,))
        arr.initialize(np.ones(8192))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        slots = [3 + 37 * k for k in range(64) if 3 + 37 * k < 8192]
        for it in range(2):
            for pos, idx in enumerate(slots):
                if pos % env.nprocs != env.rank:
                    continue
                value = yield from arr.get(env, idx)
                yield from arr.put(env, idx, value * 1.5 + it)
            yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_all(env))
        return None

    return Program("sparse", setup, worker)


PATTERNS = {
    "false_sharing": make_false_sharing_program,
    "producer_consumer": make_producer_consumer_program,
    "migratory": make_migratory_program,
    "sparse": make_sparse_update_program,
}


@pytest.mark.parametrize("pattern", sorted(PATTERNS))
@pytest.mark.parametrize(
    "variant", ALL_VARIANTS + EXTENSION_VARIANTS, ids=lambda v: v.name
)
def test_pattern_matches_sequential(pattern, variant):
    program = PATTERNS[pattern]()
    sequential = run_sequential(program, {})
    for nprocs in PATTERN_PROCS:
        cfg = RunConfig(variant=variant, nprocs=nprocs)
        if nprocs > cfg.compute_cpus_available:
            continue
        result = run_program(program, cfg, {})
        assert values_match(sequential.values[0], result.values[0]), (
            f"{pattern} diverged under {variant.name} at {nprocs} procs"
        )


@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_pattern_deterministic(pattern):
    """Two runs of the same configuration are bit-identical in data and
    simulated time."""
    program_a = PATTERNS[pattern]()
    program_b = PATTERNS[pattern]()
    from repro.config import CSM_POLL

    a = run_program(program_a, RunConfig(variant=CSM_POLL, nprocs=8), {})
    b = run_program(program_b, RunConfig(variant=CSM_POLL, nprocs=8), {})
    assert a.exec_time == b.exec_time
    assert values_match(a.values[0], b.values[0])
