"""Behavioural tests for the Cashmere protocol via small programs."""

import numpy as np
import pytest

from repro.config import CSM_INT, CSM_POLL, CSM_PP, RunConfig
from repro.core import Program, SharedArray, run_program
from repro.memory.page import Protection


def simple_program(worker):
    def setup(space, params):
        arr = SharedArray.alloc(space, "data", np.float64, (4096,))
        arr.initialize(np.zeros(4096))
        return {"arr": arr}

    return Program("probe", setup, worker)


def run(worker, nprocs=2, variant=CSM_POLL, **overrides):
    return run_program(
        simple_program(worker),
        RunConfig(variant=variant, nprocs=nprocs, **overrides),
        {},
    )


def test_first_touch_assigns_home_to_toucher():
    captured = {}

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 1:
            yield from arr.put(env, 0, 1.0)  # rank 1 touches page 0 first
        yield from env.barrier(0)
        if env.rank == 0:
            value = yield from arr.get(env, 0)
            captured["value"] = value
            captured["protocol"] = env.protocol
            captured["home"] = env.protocol.directory.entry(0).home_node
            captured["rank1_node"] = env.protocol.cluster.proc(1).node.nid
        env.stop_timer()
        return None

    run(worker)
    assert captured["value"] == 1.0
    assert captured["home"] == captured["rank1_node"]


def test_round_robin_homes_when_first_touch_disabled():
    captured = {}

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            # Touch pages 0..3 (element stride = one 8 KB page).
            for page in range(4):
                yield from arr.put(env, page * 1024, 1.0)
            captured["homes"] = [
                env.protocol.directory.entry(p).home_node for p in range(4)
            ]
        yield from env.barrier(0)
        env.stop_timer()
        return None

    run(worker, first_touch_homes=False)
    assert len(set(captured["homes"])) > 1  # spread, not all-local


def test_read_fault_counts_and_page_transfer():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 0, 3.0)
        yield from env.barrier(0)
        if env.rank == 1:
            value = yield from arr.get(env, 0)
            assert value == 3.0
        yield from env.barrier(0)
        env.stop_timer()
        return None

    result = run(worker)
    # Rank 1 is on another node, so its read faulted and moved the page.
    assert result.stats[1].reported_counters["read_faults"] >= 1
    assert result.stats[1].reported_counters["page_transfers"] >= 1


def test_home_node_access_needs_no_transfer():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 0, 3.0)
            yield from env.barrier(0)
            _ = yield from arr.get(env, 0)
        else:
            yield from env.barrier(0)
        env.stop_timer()
        return None

    result = run(worker)
    assert result.stats[0].reported_counters["page_transfers"] == 0


def test_exclusive_mode_stops_write_faults():
    """A page with a single writer moves to exclusive mode at the first
    release and stops faulting (Section 2.1)."""

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            for it in range(5):
                yield from arr.put(env, 0, float(it))
                yield from env.barrier(0)
        else:
            for _ in range(5):
                yield from env.barrier(0)
        env.stop_timer()
        return None

    result = run(worker)
    # One initial read+write fault; exclusive mode avoids the rest.
    assert result.stats[0].reported_counters["write_faults"] == 1

    result_off = run(worker, exclusive_mode=False)
    assert result_off.stats[0].reported_counters["write_faults"] == 5


def test_nle_breaks_exclusivity_and_notifies_reader():
    """When a reader touches an exclusive page, the holder's next release
    must publish a write notice so the reader sees later writes."""
    seen = []

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 0, 1.0)
            yield from env.barrier(0)  # page goes exclusive here
            yield from env.barrier(1)  # reader faults in between
            yield from arr.put(env, 0, 2.0)
            yield from env.barrier(2)
        else:
            yield from env.barrier(0)
            value = yield from arr.get(env, 0)
            assert value == 1.0
            yield from env.barrier(1)
            yield from env.barrier(2)
            value = yield from arr.get(env, 0)
            seen.append(value)
        env.stop_timer()
        return None

    run(worker)
    assert seen == [2.0]


def test_multi_writer_false_sharing_merges_at_home():
    """Two writers of disjoint words in one page merge via write-through."""

    def worker(env, shared, params):
        arr = shared["arr"]
        yield from arr.put(env, env.rank, float(env.rank + 10))
        yield from env.barrier(0)
        out = yield from arr.read_range(env, 0, 4)
        env.stop_timer()
        return list(out)

    result = run(worker, nprocs=4)
    for rank, values in enumerate(result.values):
        assert values[:4] == [10.0, 11.0, 12.0, 13.0]


def test_write_through_traffic_counted():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 1:
            # Rank 0 first-touches the page; rank 1 writes remotely.
            yield from env.barrier(0)
            yield from arr.write_range(env, 0, np.ones(512))
        else:
            yield from arr.put(env, 600, 1.0)
            yield from env.barrier(0)
        yield from env.barrier(1)
        env.stop_timer()
        return None

    result = run(worker)
    assert result.stats[1].reported_counters["write_through_bytes"] >= 4096


def test_dummy_write_doubling_removes_traffic():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 1:
            yield from env.barrier(0)
            yield from arr.write_range(env, 0, np.ones(512))
        else:
            yield from arr.put(env, 600, 1.0)
            yield from env.barrier(0)
        yield from env.barrier(1)
        env.stop_timer()
        return None

    result = run(worker, write_double_dummy=True)
    assert result.stats[1].reported_counters["write_through_bytes"] == 0


@pytest.mark.parametrize("variant", [CSM_POLL, CSM_INT, CSM_PP])
def test_producer_consumer_flags(variant):
    produced = []

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            yield from arr.put(env, 100, 42.0)
            yield from env.flag_set(0)
        else:
            yield from env.flag_wait(0)
            value = yield from arr.get(env, 100)
            produced.append(value)
        yield from env.barrier(0)
        env.stop_timer()
        return None

    run(worker, variant=variant)
    assert produced == [42.0]


def test_invariants_hold_after_run():
    def worker(env, shared, params):
        arr = shared["arr"]
        for it in range(3):
            yield from arr.put(env, env.rank * 1024, float(it))
            yield from env.barrier(0)
            _ = yield from arr.get(env, ((env.rank + 1) % env.nprocs) * 1024)
            yield from env.barrier(1)
        env.stop_timer()
        return None

    # run_program calls protocol.check_invariants() at completion.
    run(worker, nprocs=4)
