"""Table 1: cost of basic operations.

"Table 1 provides a summary of the minimum cost of page transfers and of
user-level synchronization operations for the different implementations
of Cashmere and TreadMarks.  All times are for interactions between two
processors.  The barrier times in parentheses are for a 16 processor
barrier."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.config import ALL_VARIANTS, RunConfig, Variant
from repro.core import Program, SharedArray, run_program
from repro.harness.runner import ExperimentContext

REPEATS = 8
PROBE_LOCK = 7  # odd id so neither probe rank is the TreadMarks manager


@dataclass
class Table1Row:
    variant: str
    lock_acquire: float
    barrier_2: float
    barrier_16: float
    page_transfer: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "lock_acquire": self.lock_acquire,
            "barrier_2": self.barrier_2,
            "barrier_16": self.barrier_16,
            "page_transfer": self.page_transfer,
        }


def _lock_program() -> Program:
    """Two processors pass a lock back and forth; rank 1 times the
    acquires of a lock last held by rank 0."""

    def setup(space, params):
        counter = SharedArray.alloc(space, "lock_counter", np.float64, (8,))
        counter.initialize(np.zeros(8))
        return {"counter": counter}

    def worker(env, shared, params):
        counter = shared["counter"]
        samples = []
        for _ in range(REPEATS):
            yield from env.barrier(0)
            if env.rank == 0:
                yield from env.lock_acquire(PROBE_LOCK)
                value = yield from counter.get(env, 0)
                yield from counter.put(env, 0, value + 1)
                yield from env.lock_release(PROBE_LOCK)
            yield from env.barrier(0)
            if env.rank == 1:
                start = env.now
                yield from env.lock_acquire(PROBE_LOCK)
                samples.append(env.now - start)
                value = yield from counter.get(env, 0)
                yield from counter.put(env, 0, value + 1)
                yield from env.lock_release(PROBE_LOCK)
            yield from env.barrier(0)
        env.stop_timer()
        return min(samples) if samples else None

    return Program("bench_lock", setup, worker)


def _barrier_program() -> Program:
    """All processors time a run of back-to-back barriers."""

    def setup(space, params):
        return {}

    def worker(env, shared, params):
        samples = []
        yield from env.barrier(0)
        for _ in range(REPEATS):
            start = env.now
            yield from env.barrier(0)
            samples.append(env.now - start)
        env.stop_timer()
        return min(samples)

    return Program("bench_barrier", setup, worker)


def _page_program(page_size: int) -> Program:
    """Rank 0 dirties fresh pages; rank 1 times the faulting reads."""

    def setup(space, params):
        data = SharedArray.alloc(
            space, "pages", np.float64, (REPEATS, page_size // 8)
        )
        data.initialize(np.zeros((REPEATS, page_size // 8)))
        return {"data": data}

    def worker(env, shared, params):
        data = shared["data"]
        width = data.shape[1]
        samples = []
        for i in range(REPEATS):
            if env.rank == 0:
                yield from data.write_rows(env, i, np.full((1, width), i + 1.0))
            yield from env.barrier(0)
            if env.rank == 1:
                start = env.now
                row = yield from data.read_rows(env, i, i + 1)
                samples.append(env.now - start)
                assert row[0][0] == i + 1.0
            yield from env.barrier(0)
        env.stop_timer()
        return min(samples) if samples else None

    return Program("bench_page", setup, worker)


def _run_probe(
    program: Program, ctx: ExperimentContext, variant: Variant, nprocs: int
) -> List[float]:
    cfg = RunConfig(
        variant=variant,
        nprocs=nprocs,
        cluster=ctx.cluster,
        costs=ctx.costs,
    )
    result = run_program(program, cfg, {})
    return [v for v in result.values if v is not None]


def generate(ctx: ExperimentContext = None) -> List[Table1Row]:
    """Measure Table 1 for all six protocol variants."""
    ctx = ctx or ExperimentContext()
    rows = []
    for variant in ALL_VARIANTS:
        lock_values = _run_probe(_lock_program(), ctx, variant, 2)
        barrier2 = _run_probe(_barrier_program(), ctx, variant, 2)
        barrier16 = _run_probe(_barrier_program(), ctx, variant, 16)
        page = _run_probe(_page_program(ctx.cluster.page_size), ctx, variant, 2)
        rows.append(
            Table1Row(
                variant=variant.name,
                lock_acquire=lock_values[0],
                barrier_2=max(barrier2),
                barrier_16=max(barrier16),
                page_transfer=page[0],
            )
        )
    return rows


def render(rows: List[Table1Row]) -> str:
    header = (
        f"{'Operation':<14}"
        + "".join(f"{row.variant:>13}" for row in rows)
    )
    lines = [header]
    lines.append(
        f"{'Lock Acquire':<14}"
        + "".join(f"{row.lock_acquire:>13.1f}" for row in rows)
    )
    lines.append(
        f"{'Barrier':<14}"
        + "".join(
            f"{row.barrier_2:>6.0f} ({row.barrier_16:.0f})".rjust(13)
            for row in rows
        )
    )
    lines.append(
        f"{'Page Transfer':<14}"
        + "".join(f"{row.page_transfer:>13.1f}" for row in rows)
    )
    return "\n".join(lines)
