"""Figure 6: breakdown of normalized execution time for the polling
variants.

"The breakdown is normalized with respect to total execution time for
Cashmere on 32 processors (16 for Barnes).  The components shown
represent time spent executing user code (User), the overhead of
profiling for polling (Polling) and write doubling (Write doubling),
time spent in protocol code (Protocol), and communication and wait time
(Comm & Wait)."

The paper had to extrapolate User/Polling/Write-doubling from
single-processor runs; the simulator charges every microsecond to a
category directly, so the breakdown here is measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import CSM_POLL, TMK_MC_POLL
from repro.apps import registry
from repro.harness.runner import BatchPoint, ExperimentContext
from repro.harness.table3 import procs_for
from repro.stats import Category

_BAR_ORDER = (
    Category.USER,
    Category.POLL,
    Category.WDOUBLE,
    Category.PROTOCOL,
    Category.COMM_WAIT,
)


@dataclass
class BreakdownBar:
    app: str
    system: str  # "CSM" or "TMK"
    nprocs: int
    # Each category as a fraction of the Cashmere run's total time.
    normalized: Dict[Category, float]

    @property
    def total(self) -> float:
        return sum(self.normalized.values())


def generate(
    ctx: ExperimentContext = None,
    apps: Optional[Sequence[str]] = None,
    nprocs: Optional[int] = None,
) -> List[BreakdownBar]:
    ctx = ctx or ExperimentContext()
    apps = list(apps or registry.APP_NAMES)
    batch = [
        BatchPoint(app, variant, nprocs or procs_for(app))
        for app in apps
        for variant in (CSM_POLL, TMK_MC_POLL)
    ]
    results = iter(ctx.run_batch(batch))
    bars = []
    for app in apps:
        n = nprocs or procs_for(app)
        csm = next(results)
        tmk = next(results)
        reference = csm.breakdown.total
        bars.append(
            BreakdownBar(
                app=app,
                system="CSM",
                nprocs=n,
                normalized=csm.breakdown.normalized(reference),
            )
        )
        bars.append(
            BreakdownBar(
                app=app,
                system="TMK",
                nprocs=n,
                normalized=tmk.breakdown.normalized(reference),
            )
        )
    return bars


def render(bars: List[BreakdownBar]) -> str:
    lines = [
        f"{'app':<8}{'sys':<5}{'P':>3}"
        + "".join(f"{c.value:>16}" for c in _BAR_ORDER)
        + f"{'total':>8}"
    ]
    for bar in bars:
        lines.append(
            f"{bar.app:<8}{bar.system:<5}{bar.nprocs:>3}"
            + "".join(f"{bar.normalized[c]:>16.3f}" for c in _BAR_ORDER)
            + f"{bar.total:>8.3f}"
        )
    return "\n".join(lines)
