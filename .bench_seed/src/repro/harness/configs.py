"""Processor placements used in the paper's evaluation (Section 4.3).

"The configurations we use are as follows: 1 processor: trivial;
2: separate nodes; 4: one processor in each of 4 nodes; 8: two processors
in each of 4 nodes; 12: three processors in each of 4 nodes; 16: two
processors in each of 8 nodes; 24: three processors in each of 8 nodes;
and 32: trivial, but not applicable to csm_pp."
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import ClusterConfig, Mechanism

# nprocs -> (nodes used, compute CPUs per node)
PAPER_PLACEMENTS = {
    1: (1, 1),
    2: (2, 1),
    4: (4, 1),
    8: (4, 2),
    12: (4, 3),
    16: (8, 2),
    24: (8, 3),
    32: (8, 4),
}

PAPER_PROCESSOR_COUNTS = (1, 2, 4, 8, 12, 16, 24, 32)


def paper_processor_counts(max_procs: int = 32) -> Tuple[int, ...]:
    return tuple(n for n in PAPER_PROCESSOR_COUNTS if n <= max_procs)


def placement(
    nprocs: int,
    cluster: ClusterConfig,
    mechanism: Mechanism,
) -> List[Tuple[int, int]]:
    """Map ranks to (node, cpu) slots following the paper's scheme."""
    if nprocs < 1:
        raise ValueError("need at least one processor")
    compute_cpus = cluster.cpus_per_node
    if mechanism is Mechanism.PROTOCOL_PROCESSOR:
        compute_cpus -= 1  # the last CPU of each node services requests
    if compute_cpus < 1:
        raise ValueError("no compute CPUs left on each node")

    shape = PAPER_PLACEMENTS.get(nprocs)
    if shape is not None:
        nodes_used, cpus_used = shape
        if nodes_used <= cluster.n_nodes and cpus_used <= compute_cpus:
            return [
                (nid, cpu)
                for nid in range(nodes_used)
                for cpu in range(cpus_used)
            ]

    # Fallback for non-paper counts or smaller clusters: spread across as
    # many nodes as possible, then stack CPUs round-robin.
    nodes_used = min(cluster.n_nodes, nprocs)
    if nprocs > nodes_used * compute_cpus:
        raise ValueError(
            f"cannot place {nprocs} processors on {cluster.n_nodes} nodes "
            f"x {compute_cpus} compute CPUs"
        )
    slots = []
    for cpu in range(compute_cpus):
        for nid in range(nodes_used):
            slots.append((nid, cpu))
    return sorted(slots[:nprocs])
