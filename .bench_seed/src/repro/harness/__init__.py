"""Experiment harness: processor placements, per-table/figure drivers,
and the command-line interface (``repro-dsm``)."""

from repro.harness.configs import placement, paper_processor_counts
from repro.harness.runner import ExperimentContext

__all__ = ["ExperimentContext", "placement", "paper_processor_counts"]
