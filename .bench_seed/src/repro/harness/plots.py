"""ASCII rendering for the paper's figures.

Figure 5 is a grid of speedup-vs-processors line charts, Figure 6 a row
of stacked breakdown bars; these helpers draw terminal equivalents so
``repro-dsm figure5 --chart`` is directly comparable with the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKS = "ox+*#@%&"


def line_chart(
    series: Dict[str, Dict[int, float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    y_label: str = "speedup",
    x_label: str = "processors",
) -> str:
    """Draw one chart: named series of {x: y} points.

    X positions are spaced by value (so 1, 2, 4 ... 32 lands like the
    paper's axes); each series gets a distinct mark, with a legend.
    """
    points = [(x, y) for curve in series.values() for x, y in curve.items()]
    if not points:
        raise ValueError("nothing to plot")
    xs = sorted({x for curve in series.values() for x in curve})
    y_max = max(y for _, y in points)
    y_max = max(y_max, 1.0) * 1.05
    x_min, x_max = min(xs), max(xs)
    span = max(x_max - x_min, 1)

    def col(x: int) -> int:
        return int(round((x - x_min) / span * (width - 1)))

    def row(y: float) -> int:
        return (height - 1) - int(round(y / y_max * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    # The ideal-speedup diagonal, where it fits, as light dots.
    for x in xs:
        if x <= y_max:
            grid[row(float(x))][col(x)] = "."
    for index, (name, curve) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in sorted(curve.items()):
            r, c = row(min(y, y_max)), col(x)
            grid[r][c] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:5.1f} +"
    pad = " " * (len(top_label) - 1)
    for r, cells in enumerate(grid):
        prefix = top_label if r == 0 else f"{pad}|"
        if r == height - 1:
            prefix = f"{0.0:5.1f} +"
        lines.append(prefix + "".join(cells))
    axis = pad + "+" + "-" * width
    lines.append(axis)
    ticks = pad + " "
    tick_row = [" "] * (width + 1)
    for x in xs:
        label = str(x)
        start = min(col(x), width - len(label))
        for i, ch in enumerate(label):
            tick_row[start + i] = ch
    lines.append(ticks + "".join(tick_row) + f"  {x_label}")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{pad} {legend}   ({y_label}; dots mark ideal)")
    return "\n".join(lines)


def stacked_bar(
    fractions: Sequence[float],
    labels: Sequence[str],
    width: int = 50,
) -> str:
    """One horizontal stacked bar; each segment gets its label's initial."""
    if len(fractions) != len(labels):
        raise ValueError("fractions and labels must align")
    total = sum(fractions)
    cells: List[str] = []
    for fraction, label in zip(fractions, labels):
        n = int(round(fraction * width))
        cells.extend((label[0].upper() if label else "?") * n)
    bar = "".join(cells)[: int(round(total * width))]
    return f"|{bar:<{width}}| {total:5.2f}"


def breakdown_chart(bars, width: int = 50) -> str:
    """Figure 6 as stacked bars (one per app x system), normalized to
    the Cashmere bar of each app."""
    from repro.stats import Category

    order = (
        Category.USER,
        Category.POLL,
        Category.WDOUBLE,
        Category.PROTOCOL,
        Category.COMM_WAIT,
    )
    labels = [c.value for c in order]
    lines = [
        "segments: "
        + "  ".join(f"{label[0].upper()}={label}" for label in labels)
    ]
    for bar in bars:
        fractions = [bar.normalized[c] for c in order]
        rendered = stacked_bar(fractions, labels, width)
        lines.append(f"{bar.app:>8} {bar.system:<4}{rendered}")
    return "\n".join(lines)
