"""Deterministic discrete-event simulation engine.

The design follows SimPy's process/event model, reduced to exactly what
the DSM simulation needs:

* :class:`Event` — one-shot; processes wait on it by yielding it.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`AnyOf` — fires as soon as any child event fires.
* :class:`Process` — wraps a generator; is itself an event that fires
  when the generator returns.  Supports :meth:`Process.interrupt`, which
  the cluster model uses to deliver remote requests into a running
  compute block.

The inner loop is deliberately allocation-light: heap entries are plain
``(when, seq, func, arg)`` tuples (no closures), and callback
registration hands out *cells* that are cancelled in O(1) by
tombstoning rather than ``list.remove`` — long-lived events (processor
mailboxes, contended locks) see one register/cancel pair per wait, and
the old linear removal made that quadratic over a run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class DeadlockError(RuntimeError):
    """Raised when live processes remain but no event can ever fire."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: A registered callback: a one-element list so cancellation is a single
#: store (``cell[0] = None``) instead of an O(n) list removal.
Cell = List[Optional[Callable]]

#: Compact an event's callback list only once tombstones both exceed
#: this count and outnumber the live entries.
_COMPACT_MIN_DEAD = 8


def _succeed(event: "Event") -> None:
    event.succeed()


def _invoke(action: Callable[[], None]) -> None:
    action()


def _fire(event: "Event") -> None:
    """Deliver a fired event to the callbacks registered at fire time."""
    cells, event.callbacks = event.callbacks, None
    for cell in cells:
        callback = cell[0]
        if callback is not None:
            callback(event)


class Event:
    """A one-shot event; fires at most once with an optional value."""

    __slots__ = ("engine", "callbacks", "_dead", "_triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Cell]] = []
        self._dead = 0
        self._triggered = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def add_callback(self, callback: Callable[["Event"], None]) -> Cell:
        """Register ``callback`` for the fire; returns its cancel cell."""
        cell: Cell = [callback]
        self.callbacks.append(cell)
        return cell

    def cancel_callback(self, cell: Cell) -> None:
        """Cancel a registration in O(1) by tombstoning its cell."""
        if cell[0] is None:
            return
        cell[0] = None
        callbacks = self.callbacks
        if callbacks is None:
            return  # already fired; the tombstone alone suffices
        self._dead += 1
        if (
            self._dead > _COMPACT_MIN_DEAD
            and self._dead * 2 > len(callbacks)
        ):
            self.callbacks = [c for c in callbacks if c[0] is not None]
            self._dead = 0

    def live_callbacks(self) -> List[Callable]:
        """The still-registered callbacks (testing/introspection)."""
        return [c[0] for c in (self.callbacks or ()) if c[0] is not None]

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now; waiters resume at the current sim time."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self.value = value
        if self.callbacks:
            self.engine._push(self.engine.now, _fire, self)
        else:
            self.callbacks = None
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds from now."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        engine._push(engine.now + delay, _succeed, self)


class AnyOf(Event):
    """Fires when the first of ``events`` fires; value is that event."""

    __slots__ = ("events", "_cells")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf needs at least one event")
        fired = next((e for e in self.events if e._triggered), None)
        if fired is not None:
            self.succeed(fired)
            return
        self._cells = [e.add_callback(self._child_fired) for e in self.events]

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from the children that did not fire; long-lived events
        # (processor mailboxes, lock grants) would otherwise accumulate
        # one dead callback per wait.
        for child, cell in zip(self.events, self._cells):
            if child is not event:
                child.cancel_callback(cell)
        self.succeed(event)


class Process(Event):
    """A running generator process.  Fires (as an event) on return."""

    __slots__ = (
        "generator",
        "name",
        "daemon",
        "_waiting_on",
        "_wait_cell",
        "_interrupt_pending",
    )

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
    ):
        super().__init__(engine)
        self.generator = generator
        self.name = name
        self.daemon = daemon
        self._waiting_on: Optional[Event] = None
        self._wait_cell: Optional[Cell] = None
        self._interrupt_pending: Optional[Interrupt] = None
        engine._push(engine.now, Process._start, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        if self._interrupt_pending is not None:
            return  # coalesce; one wakeup is enough
        self._interrupt_pending = Interrupt(cause)
        self.engine._push(self.engine.now, Process._deliver_interrupt, self)

    # -- internals ----------------------------------------------------

    def _start(self) -> None:
        self._step_send(None)

    def _deliver_interrupt(self) -> None:
        interrupt = self._interrupt_pending
        self._interrupt_pending = None
        if interrupt is None or self._triggered:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None:
            waited.cancel_callback(self._wait_cell)
        try:
            target = self.generator.throw(interrupt)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._wait_for(target)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (we were interrupted away from it)
        self._waiting_on = None
        self._step_send(event.value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target._triggered:
            self.engine._push(self.engine.now, self._resume_immediate, target)
        else:
            self._waiting_on = target
            self._wait_cell = target.add_callback(self._resume)

    def _resume_immediate(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        self._step_send(event.value)


class Engine:
    """The event loop: a time-ordered heap of pending callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._seq = 0
        self._processes: List[Process] = []

    # -- public construction helpers ----------------------------------

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
    ) -> Process:
        proc = Process(self, generator, name, daemon)
        self._processes.append(proc)
        return proc

    def call_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute sim time ``when``."""
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, _invoke, action)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until no work remains (or ``until`` sim time); return now."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            _when, _seq, func, arg = pop(heap)
            if when < self.now:
                raise RuntimeError("event scheduled in the past")
            self.now = when
            func(arg)
        stuck = [
            p.name for p in self._processes if p.is_alive and not p.daemon
        ]
        if stuck:
            raise DeadlockError(
                f"no events pending but processes still alive: {stuck}"
            )
        return self.now

    # -- internals -----------------------------------------------------

    def _push(self, when: float, func: Callable[[Any], None], arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, func, arg))
