"""A small deterministic discrete-event simulation kernel.

Processes are Python generators that ``yield`` events; the engine resumes
them when the event fires.  The kernel is single-threaded and fully
deterministic: events scheduled for the same instant fire in scheduling
order.
"""

from repro.sim.engine import (
    AnyOf,
    DeadlockError,
    Engine,
    Event,
    Interrupt,
    Process,
    Timeout,
)

__all__ = [
    "AnyOf",
    "DeadlockError",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
]
