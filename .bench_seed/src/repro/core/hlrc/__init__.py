"""Home-based lazy release consistency (HLRC) — the natural hybrid of
the paper's two systems, studied as follow-on work to both (Zhou, Iftode
& Li, OSDI 1996; the Cashmere lineage converged on similar designs)."""

from repro.core.hlrc.protocol import HlrcProtocol

__all__ = ["HlrcProtocol"]
