"""Vector timestamps, intervals, and write notices.

Lazy release consistency divides each processor's execution into
*intervals* delineated by remote synchronization operations.  An
:class:`IntervalRecord` is the unit of consistency information exchanged
at acquires: it names the writing processor, its interval index, the
vector timestamp of the interval, and the pages written (the *write
notices*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def vts_max(a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Pairwise maximum of two vector timestamps."""
    if len(a) != len(b):
        raise ValueError("vector timestamps of different arity")
    return tuple(max(x, y) for x, y in zip(a, b))


def vts_leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """True iff ``a`` happens-before-or-equals ``b`` (pointwise <=)."""
    if len(a) != len(b):
        raise ValueError("vector timestamps of different arity")
    return all(x <= y for x, y in zip(a, b))


@dataclass(frozen=True)
class IntervalRecord:
    """One closed interval of one processor, with its write notices."""

    proc: int
    iid: int  # interval index on ``proc`` (1-based)
    vts: Tuple[int, ...]
    pages: Tuple[int, ...]

    def encoded_size(self, header: int, vts_entry: int, notice: int) -> int:
        return header + vts_entry * len(self.vts) + notice * len(self.pages)

    def sort_key(self) -> Tuple[int, int]:
        """A total order consistent with happens-before: if interval a
        precedes interval b then sum(a.vts) < sum(b.vts)."""
        return (sum(self.vts), self.proc)


class IntervalStore:
    """One processor's knowledge of everyone's closed intervals.

    Garbage collection (see ``TreadMarksProtocol``) discards records at
    a globally synchronized point; the store then keeps only a per-proc
    *base* — the last interval index covered by the collected epoch.
    """

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self._records: Dict[int, List[IntervalRecord]] = {
            p: [] for p in range(nprocs)
        }
        self._base: List[int] = [0] * nprocs

    def insert(self, record: IntervalRecord) -> bool:
        """Add a record; returns False if it was already known.

        Records for one processor always arrive in increasing interval
        order (they travel together along happens-before edges), so the
        per-processor list stays sorted.
        """
        chain = self._records[record.proc]
        last = chain[-1].iid if chain else self._base[record.proc]
        if record.iid <= last:
            return False
        if record.iid != last + 1:
            raise AssertionError(
                f"interval gap for p{record.proc}: got {record.iid} "
                f"after {last}"
            )
        chain.append(record)
        return True

    def latest(self, proc: int) -> int:
        chain = self._records[proc]
        return chain[-1].iid if chain else self._base[proc]

    def record_count(self) -> int:
        return sum(len(chain) for chain in self._records.values())

    def collect(self, vts: Sequence[int]) -> None:
        """Discard every record (all are covered by ``vts`` after a
        global flush) and remember the epoch base."""
        for proc in range(self.nprocs):
            if self.latest(proc) > vts[proc]:
                raise AssertionError(
                    f"cannot collect: p{proc} has records past the epoch"
                )
            self._records[proc] = []
            self._base[proc] = vts[proc]

    def records_after(self, vts: Sequence[int]) -> List[IntervalRecord]:
        """All known records not yet seen by a processor at ``vts``,
        in a happens-before-consistent order."""
        out: List[IntervalRecord] = []
        for proc, chain in self._records.items():
            seen = vts[proc]
            for record in chain:
                if record.iid > seen:
                    out.append(record)
        out.sort(key=IntervalRecord.sort_key)
        return out

    def all_records(self) -> Iterable[IntervalRecord]:
        for chain in self._records.values():
            yield from chain
