"""The DSM runtime: shared arrays, the per-worker environment, and the
SPMD program runner."""

from repro.core.runtime.shared import SharedArray
from repro.core.runtime.env import Env
from repro.core.runtime.program import (
    Program,
    RunResult,
    run_program,
    run_sequential,
)

__all__ = [
    "Env",
    "Program",
    "RunResult",
    "SharedArray",
    "run_program",
    "run_sequential",
]
