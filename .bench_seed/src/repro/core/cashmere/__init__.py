"""Cashmere: directory-based software DSM using Memory Channel remote
writes for fine-grain communication (Section 2.1 of the paper)."""

from repro.core.cashmere.protocol import CashmereProtocol
from repro.core.cashmere.directory import Directory, DirectoryEntry
from repro.core.cashmere.lists import NoticeList

__all__ = ["CashmereProtocol", "Directory", "DirectoryEntry", "NoticeList"]
