"""Cashmere's globally accessible per-processor lists.

Each processor exports two lists in Memory Channel space, protected by
cluster-wide locks:

* the *write notice list* — pages valid on the processor that remote
  processors have written (with a bitmap to suppress duplicates);
* the *no-longer-exclusive (NLE) list* — pages the processor once held
  exclusively that have since been shared.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Set


class NoticeList:
    """An appendable page list with a duplicate-suppressing bitmap."""

    def __init__(self) -> None:
        self._queue: Deque[int] = deque()
        self._bitmap: Set[int] = set()

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, page: int) -> bool:
        return page in self._bitmap

    def append(self, page: int) -> bool:
        """Add ``page`` unless a notice is already pending for it.

        Returns True if a new descriptor was actually appended (and hence
        a Memory Channel write was needed).
        """
        if page in self._bitmap:
            return False
        self._bitmap.add(page)
        self._queue.append(page)
        return True

    def drain(self) -> Iterator[int]:
        """Remove and yield all pending pages."""
        while self._queue:
            page = self._queue.popleft()
            self._bitmap.discard(page)
            yield page
