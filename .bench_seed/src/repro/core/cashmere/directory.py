"""Cashmere's distributed page directory.

A directory entry is a set of eight 4-byte words, one per SMP node, each
holding presence bits for the node's four CPUs, the page's home node, a
first-touch bit, and exclusive-mode bits.  The directory is replicated on
every node: reads are local, updates are broadcast over the Memory
Channel.  The simulator keeps one authoritative copy and charges the
replication costs explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class DirectoryEntry:
    """Authoritative sharing state of one page."""

    page: int
    sharers: Set[int] = field(default_factory=set)  # processor ids
    home_node: Optional[int] = None
    home_from_first_touch: bool = False
    exclusive_holder: Optional[int] = None
    never_exclusive: bool = False
    # Only used by the legacy weak-state protocol variant: a page with
    # any writer is "weak" and invalidated by every sharer at acquires.
    weak: bool = False

    @property
    def home_assigned(self) -> bool:
        return self.home_node is not None

    def others(self, pid: int) -> Set[int]:
        return self.sharers - {pid}


class Directory:
    """Lazy map page -> :class:`DirectoryEntry`."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, page: int) -> DirectoryEntry:
        found = self._entries.get(page)
        if found is None:
            found = DirectoryEntry(page)
            self._entries[page] = found
        return found

    def known_entries(self) -> Dict[int, DirectoryEntry]:
        return dict(self._entries)

    def check(self) -> None:
        """Invariant check: exclusive holder must be the only sharer's
        candidate writer and must itself be a sharer."""
        for page, entry in self._entries.items():
            holder = entry.exclusive_holder
            if holder is not None and holder not in entry.sharers:
                raise AssertionError(
                    f"page {page}: exclusive holder {holder} is not a sharer"
                )
            if holder is not None and entry.never_exclusive:
                raise AssertionError(
                    f"page {page}: exclusive but flagged never-exclusive"
                )
