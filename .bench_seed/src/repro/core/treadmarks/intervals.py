"""Compatibility shim: the interval/vector-timestamp machinery moved to
:mod:`repro.core.intervals` when home-based LRC started sharing it."""

from repro.core.intervals import (
    IntervalRecord,
    IntervalStore,
    vts_leq,
    vts_max,
)

__all__ = ["IntervalRecord", "IntervalStore", "vts_leq", "vts_max"]
