"""TreadMarks: lazy release consistency with twins and diffs
(Section 2.2 of the paper)."""

from repro.core.treadmarks.intervals import IntervalRecord, IntervalStore
from repro.core.treadmarks.protocol import TreadMarksProtocol

__all__ = ["IntervalRecord", "IntervalStore", "TreadMarksProtocol"]
