"""Execution-time breakdown in the style of the paper's Figure 6.

The paper could only measure Protocol and Comm & Wait directly and had to
extrapolate User / Polling / Write-doubling time from single-processor
runs.  The simulator charges every microsecond to a category as it is
spent, so the breakdown here is measured directly; the normalisation
(each bar as a fraction of Cashmere's total) matches the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.stats.counters import Category, StatsBoard

_ORDER = (
    Category.USER,
    Category.POLL,
    Category.WDOUBLE,
    Category.PROTOCOL,
    Category.COMM_WAIT,
)


@dataclass(frozen=True)
class Breakdown:
    """Aggregate time per category, normalisable against a reference."""

    time: Dict[Category, float]

    @staticmethod
    def from_stats(stats: StatsBoard) -> "Breakdown":
        return Breakdown({c: stats.total_time(c) for c in _ORDER})

    @property
    def total(self) -> float:
        return sum(self.time.values())

    def fractions(self) -> Dict[Category, float]:
        total = self.total
        if total <= 0:
            return {c: 0.0 for c in _ORDER}
        return {c: self.time[c] / total for c in _ORDER}

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready category->microseconds mapping (trace metadata)."""
        return {c.value: self.time[c] for c in _ORDER}

    def normalized(self, reference_total: float) -> Dict[Category, float]:
        """Each category as a fraction of ``reference_total`` (Figure 6
        normalises both systems against Cashmere's total time)."""
        if reference_total <= 0:
            raise ValueError("reference total must be positive")
        return {c: self.time[c] / reference_total for c in _ORDER}
