"""Time categories and counters for one simulated execution.

The five time categories mirror the paper's Figure 6 breakdown: User,
Polling, Write doubling, Protocol, and Communication & Wait.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable


class Category(enum.Enum):
    """Where a microsecond of a processor's time went."""

    USER = "user"
    POLL = "polling"
    WDOUBLE = "write_doubling"
    PROTOCOL = "protocol"
    COMM_WAIT = "comm_wait"


@dataclass
class ProcStats:
    """Time and event accounting for a single processor.

    A worker may *freeze* its statistics when its timed section ends
    (before any untimed verification epilogue); reported values then come
    from the frozen snapshot.
    """

    pid: int
    time: Dict[Category, float] = field(
        default_factory=lambda: {c: 0.0 for c in Category}
    )
    counters: Counter = field(default_factory=Counter)
    finish_time: float = 0.0
    _frozen_time: Dict[Category, float] = field(default=None, repr=False)
    _frozen_counters: Counter = field(default=None, repr=False)

    def charge(self, category: Category, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative charge {dt} to {category}")
        self.time[category] += dt

    def bump(self, counter: str, n: int = 1) -> None:
        self.counters[counter] += n

    def freeze(self, now: float) -> None:
        """Snapshot time and counters at the end of the timed section."""
        self.finish_time = now
        self._frozen_time = dict(self.time)
        self._frozen_counters = Counter(self.counters)

    @property
    def frozen(self) -> bool:
        return self._frozen_time is not None

    @property
    def reported_time(self) -> Dict[Category, float]:
        return self._frozen_time if self.frozen else self.time

    @property
    def reported_counters(self) -> Counter:
        return self._frozen_counters if self.frozen else self.counters

    @property
    def total_time(self) -> float:
        return sum(self.reported_time.values())

    def as_dict(self) -> Dict:
        """JSON-ready snapshot of the reported (frozen if frozen) view;
        used by the trace exporters' run metadata."""
        return {
            "pid": self.pid,
            "finish_time": self.finish_time,
            "time_us": {c.value: t for c, t in self.reported_time.items()},
            "counters": dict(self.reported_counters),
        }


class StatsBoard:
    """All processors' statistics for one run, plus aggregation."""

    def __init__(self, nprocs: int):
        self.procs = [ProcStats(pid) for pid in range(nprocs)]

    def __getitem__(self, pid: int) -> ProcStats:
        return self.procs[pid]

    def __iter__(self) -> Iterable[ProcStats]:
        return iter(self.procs)

    def total(self, counter: str) -> int:
        return sum(p.reported_counters[counter] for p in self.procs)

    def total_time(self, category: Category) -> float:
        return sum(p.reported_time[category] for p in self.procs)

    def aggregate_counters(self) -> Counter:
        out: Counter = Counter()
        for proc in self.procs:
            out.update(proc.reported_counters)
        return out

    @property
    def finish_time(self) -> float:
        return max((p.finish_time for p in self.procs), default=0.0)

    def as_dict(self) -> Dict:
        """JSON-ready per-processor snapshot (see ProcStats.as_dict)."""
        return {
            "finish_time": self.finish_time,
            "procs": [p.as_dict() for p in self.procs],
        }
