"""Per-processor time accounting, event counters, and observability.

``counters``/``breakdown`` hold the paper-facing accounting (Figure 6
categories, Table 3 counters).  ``trace`` records protocol events when
``RunConfig(trace=True)`` and offers timeline queries; ``export`` turns
traces into self-describing JSONL or Chrome trace-event files (see
``docs/OBSERVABILITY.md``).
"""

from repro.stats.counters import Category, ProcStats, StatsBoard
from repro.stats.breakdown import Breakdown
from repro.stats.trace import TraceEvent, Tracer, diff_traces
from repro.stats.export import (
    TraceRun,
    chrome_trace,
    export_runs,
    read_jsonl,
    run_metadata,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "Category",
    "ProcStats",
    "StatsBoard",
    "Breakdown",
    "TraceEvent",
    "Tracer",
    "TraceRun",
    "diff_traces",
    "run_metadata",
    "chrome_trace",
    "export_runs",
    "read_jsonl",
    "write_chrome",
    "write_jsonl",
]
