"""Optional protocol event tracing and timeline queries.

With ``RunConfig(trace=True)`` the protocols record every observable
coherence event — faults, page fetches, twins, diffs, invalidations,
synchronization — as :class:`TraceEvent` tuples.  The trace is exposed
on ``RunResult.trace`` and is the basis of the protocol-microscope
example, of fine-grained protocol tests, and of the exporters in
:mod:`repro.stats.export` (JSONL and Chrome trace-event format).

Two kinds of event exist:

* *instants* (``dur == 0``) — a coherence action at one simulated
  moment: a fault, a twin, a diff, an invalidation;
* *spans* (``dur > 0``) — an operation with extent: a compute block, a
  barrier episode, a lock acquire.  Spans are recorded when they end
  but carry their *start* time, so the tracer's query surface always
  presents events in chronological (start-time) order.

The complete catalog of event kinds and their ``details`` fields is
documented in ``docs/OBSERVABILITY.md``; a test enforces that the
catalog stays complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event at a simulated instant (or over a span)."""

    time: float
    pid: int
    kind: str
    details: Tuple[Tuple[str, Any], ...] = ()
    dur: float = 0.0  # span duration; 0 for instantaneous events

    def get(self, key: str, default=None):
        for name, value in self.details:
            if name == key:
                return value
        return default

    @property
    def end(self) -> float:
        """The simulated time at which the event's extent ends."""
        return self.time + self.dur

    @property
    def is_span(self) -> bool:
        return self.dur > 0

    def details_dict(self) -> Dict[str, Any]:
        return dict(self.details)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready representation (see ``docs/OBSERVABILITY.md``)."""
        out: Dict[str, Any] = {"ts": self.time, "pid": self.pid,
                               "kind": self.kind}
        if self.dur:
            out["dur"] = self.dur
        if self.details:
            out["details"] = dict(self.details)
        return out

    @staticmethod
    def from_dict(record: Dict[str, Any]) -> "TraceEvent":
        details = record.get("details") or {}
        return TraceEvent(
            time=record["ts"],
            pid=record["pid"],
            kind=record["kind"],
            details=tuple(sorted(details.items())),
            dur=record.get("dur", 0.0),
        )

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.details)
        span = f" (+{self.dur:.1f}us)" if self.dur else ""
        return f"[{self.time:12.1f}us] p{self.pid:<3} {self.kind:<18} {parts}{span}"


class Tracer:
    """Collects protocol events; a disabled tracer costs one branch."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._sorted: Optional[List[TraceEvent]] = None

    def emit(self, time: float, pid: int, kind: str, dur: float = 0.0,
             **details) -> None:
        if not self.enabled:
            return
        self._sorted = None
        self.events.append(
            TraceEvent(time, pid, kind, tuple(sorted(details.items())), dur)
        )

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.timeline())

    def timeline(self) -> List[TraceEvent]:
        """All events in chronological (start-time) order.

        Spans are recorded when they *end* but sort by their start time,
        so ``self.events`` (emission order) can disagree with the
        timeline; queries always use this sorted view.  The sort is
        stable: simultaneous events keep their emission order.
        """
        if self._sorted is None:
            self._sorted = sorted(self.events, key=lambda e: e.time)
        return self._sorted

    def kinds(self) -> set:
        return {e.kind for e in self.events}

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.timeline() if e.kind in wanted]

    def for_pid(self, pid: int) -> List[TraceEvent]:
        return [e for e in self.timeline() if e.pid == pid]

    def for_page(self, page: int) -> List[TraceEvent]:
        return [e for e in self.timeline() if e.get("page") == page]

    def page_history(self, page: int) -> List[TraceEvent]:
        """The chronological coherence history of one page: every fault,
        transfer, twin, diff, notice, and invalidation that names it."""
        return self.for_page(page)

    def between(self, start: float, stop: float) -> List[TraceEvent]:
        """Events whose start time falls in the half-open window
        ``[start, stop)`` of simulated microseconds."""
        return [e for e in self.timeline() if start <= e.time < stop]

    def spans(self, *kinds: str) -> List[TraceEvent]:
        """Duration events only (``dur > 0``), optionally filtered by kind."""
        wanted = set(kinds)
        return [
            e for e in self.timeline()
            if e.is_span and (not wanted or e.kind in wanted)
        ]

    def lock_chain(self, lock_id: int) -> List[TraceEvent]:
        """The contention chain of one lock: every acquire, grant, and
        release naming it, in chronological order.  Reading the ``pid``
        sequence off this list shows how token ownership migrated."""
        return [
            e for e in self.timeline() if e.get("lock") == lock_id
        ]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, limit: Optional[int] = None) -> str:
        events = self.timeline()
        if limit is not None:
            events = events[:limit]
        return "\n".join(str(e) for e in events)


NULL_TRACER = Tracer(enabled=False)


# ---------------------------------------------------------------------------
# cross-protocol trace diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SyncPoint:
    """One aligned synchronization episode in two traces of the same
    program: the n-th ``barrier`` span of one processor, under each
    protocol.  ``skew`` is how much later (in simulated us) the second
    protocol reached it."""

    pid: int
    barrier: Any
    index: int  # n-th barrier episode of this pid
    time_a: float
    time_b: float

    @property
    def skew(self) -> float:
        return self.time_b - self.time_a


@dataclass
class TraceDiff:
    """A structural comparison of two traces of the *same application
    run* under different protocols (see :func:`diff_traces`)."""

    label_a: str
    label_b: str
    counts_a: Dict[str, int]
    counts_b: Dict[str, int]
    sync_points: List[SyncPoint] = field(default_factory=list)

    @property
    def kinds(self) -> List[str]:
        return sorted(set(self.counts_a) | set(self.counts_b))

    @property
    def only_a(self) -> List[str]:
        return sorted(set(self.counts_a) - set(self.counts_b))

    @property
    def only_b(self) -> List[str]:
        return sorted(set(self.counts_b) - set(self.counts_a))

    def delta(self, kind: str) -> int:
        return self.counts_b.get(kind, 0) - self.counts_a.get(kind, 0)

    def render(self) -> str:
        width = max([len(k) for k in self.kinds] + [len("event kind")]) + 2
        a, b = self.label_a, self.label_b
        lines = [
            f"{'event kind':<{width}}{a:>14}{b:>14}{'delta':>10}"
        ]
        for kind in self.kinds:
            na = self.counts_a.get(kind, 0)
            nb = self.counts_b.get(kind, 0)
            lines.append(
                f"{kind:<{width}}{na:>14,}{nb:>14,}{nb - na:>+10,}"
            )
        if self.sync_points:
            worst = max(self.sync_points, key=lambda s: abs(s.skew))
            lines.append(
                f"aligned {len(self.sync_points)} barrier episodes; "
                f"largest skew {worst.skew:+.1f}us "
                f"(p{worst.pid} barrier {worst.barrier} #{worst.index})"
            )
        return "\n".join(lines)


def diff_traces(
    trace_a: Tracer,
    trace_b: Tracer,
    label_a: str = "a",
    label_b: str = "b",
) -> TraceDiff:
    """Align two traces of the same application run under different
    protocols.

    The protocols share the program's synchronization structure (same
    barriers, in the same per-processor order), so the n-th ``barrier``
    span of each processor is the natural alignment anchor; everything
    between anchors is protocol-specific and is compared by event-kind
    census.  Returns a :class:`TraceDiff` with per-kind counts, the
    kinds unique to each protocol, and the aligned barrier episodes
    with their time skew.
    """
    diff = TraceDiff(
        label_a=label_a,
        label_b=label_b,
        counts_a=trace_a.counts(),
        counts_b=trace_b.counts(),
    )
    per_pid_a: Dict[int, List[TraceEvent]] = {}
    for event in trace_a.of_kind("barrier"):
        per_pid_a.setdefault(event.pid, []).append(event)
    per_pid_b: Dict[int, List[TraceEvent]] = {}
    for event in trace_b.of_kind("barrier"):
        per_pid_b.setdefault(event.pid, []).append(event)
    for pid in sorted(set(per_pid_a) & set(per_pid_b)):
        for index, (ea, eb) in enumerate(
            zip(per_pid_a[pid], per_pid_b[pid])
        ):
            diff.sync_points.append(
                SyncPoint(
                    pid=pid,
                    barrier=ea.get("barrier"),
                    index=index,
                    time_a=ea.time,
                    time_b=eb.time,
                )
            )
    return diff
