"""Page protection states, as a hardware MMU would hold them."""

from __future__ import annotations

import enum


class Protection(enum.IntEnum):
    """Access rights of one processor's mapping of one page.

    Ordering is meaningful: ``NONE < READ < READ_WRITE``.
    """

    NONE = 0
    READ = 1
    READ_WRITE = 2

    def allows_read(self) -> bool:
        return self >= Protection.READ

    def allows_write(self) -> bool:
        return self >= Protection.READ_WRITE
