"""The paged shared address space and twin/diff machinery."""

from repro.memory.page import Protection
from repro.memory.diff import Diff, make_diff, apply_diff
from repro.memory.address_space import AddressSpace, SharedRegion

__all__ = [
    "AddressSpace",
    "Diff",
    "Protection",
    "SharedRegion",
    "apply_diff",
    "make_diff",
]
