"""The paper's eight benchmark applications, ported to the DSM API.

Each module exposes ``program()`` (the :class:`repro.core.Program`),
``default_params(scale)`` and the module-level sharing-pattern notes the
paper's evaluation relies on.
"""

from repro.apps import registry

__all__ = ["registry"]
