"""The simulated hardware: nodes, processors, caches, and the Memory
Channel network with its request/response messaging layer."""

from repro.cluster.network import MemoryChannel
from repro.cluster.cache import CacheModel
from repro.cluster.machine import Cluster, Node, Processor
from repro.cluster.messaging import Messenger, Request

__all__ = [
    "CacheModel",
    "Cluster",
    "MemoryChannel",
    "Messenger",
    "Node",
    "Processor",
    "Request",
]
