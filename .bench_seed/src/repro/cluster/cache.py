"""First/second-level cache working-set cost model.

The paper traces the most dramatic Cashmere/TreadMarks differences (LU,
Gauss) to cache pressure: write doubling pushes the primary working set
out of the 21064A's 16 KB first-level cache, and TreadMarks' twins and
diffs compete for second-level cache space.  Simulating a cache per
access is infeasible in Python, so the model is declarative: a compute
phase states its working set, and the model converts (working set +
protocol-added footprint) into a compute-time inflation factor.
"""

from __future__ import annotations

from repro.config import CostModel, WorkingSet


class CacheModel:
    """Turns a declared working set into a compute inflation factor."""

    def __init__(self, costs: CostModel):
        self.costs = costs

    def factor(self, resident_bytes: int) -> float:
        """Inflation for a working set of ``resident_bytes``.

        Below L1 there is no penalty; between L1 and L2 the penalty
        interpolates up to ``l2_penalty``; beyond L2 it interpolates up
        to ``mem_penalty``.  The interpolation avoids cliff artifacts
        when scaled-down working sets sit near a boundary.
        """
        if resident_bytes < 0:
            raise ValueError("negative working set")
        l1, l2 = self.costs.l1_bytes, self.costs.l2_bytes
        if resident_bytes <= l1:
            return 1.0
        if resident_bytes <= l2:
            # Spilling L1 hurts fast: at twice the L1 size roughly half
            # the accesses miss, which is already the full out-of-L1
            # penalty for a streaming working set.
            ramp = min(1.0, (resident_bytes - l1) / l1)
            return 1.0 + (self.costs.l2_penalty - 1.0) * ramp
        span = min(1.0, (resident_bytes - l2) / (4.0 * l2))
        return self.costs.l2_penalty + (
            self.costs.mem_penalty - self.costs.l2_penalty
        ) * span

    def secondary_factor(self, resident_bytes: int) -> float:
        """Inflation from the phase's larger reuse set against L2."""
        if resident_bytes <= self.costs.l2_bytes:
            return 1.0
        span = min(
            1.0,
            (resident_bytes - self.costs.l2_bytes) / self.costs.l2_bytes,
        )
        # Working out of DRAM instead of the board cache.
        return 1.0 + (self.costs.mem_penalty - self.costs.l2_penalty) * span

    def total_factor(
        self, ws: WorkingSet, extra_l1: int = 0, extra_l2: int = 0
    ) -> float:
        """Compute-time multiplier for a phase whose declared working
        sets carry protocol-added footprint.

        Application compute constants are calibrated for cache-resident
        execution; this factor inflates them when the primary set (plus
        ``extra_l1``) spills L1 or the secondary reuse set (plus
        ``extra_l2``) spills L2 — including in the sequential baseline,
        which is how Gauss's "performance jump when the per-processor
        data fits in the second-level cache" emerges.
        """
        result = 1.0
        if ws.primary > 0:
            result *= self.factor(ws.primary + max(extra_l1, 0))
        if ws.secondary > 0:
            result *= self.secondary_factor(ws.secondary + max(extra_l2, 0))
        return result
