"""Model of DEC's Memory Channel network.

The protocol-relevant properties (Section 3.1 of the paper):

* user-level remote *writes* only — no remote reads;
* ~5.2 us process-to-process write latency;
* per-link bandwidth limited by the 32-bit PCI bus (~30 MB/s) and
  aggregate bandwidth limited by the early device driver (~32 MB/s);
* writes are totally ordered and may be broadcast to every node;
* optional loop-back of a node's own writes (used only for locks).

Transfers are modelled with busy-until occupancy times per transmit link
plus a shared hub pipe, which reproduces the paper's observation that the
"relatively modest cross-sectional bandwidth ... limits the performance
of write-through".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import ClusterConfig, CostModel


@dataclass
class LinkUsage:
    """Aggregate traffic accounting for one transmit link."""

    bytes_sent: int = 0
    transfers: int = 0


class MemoryChannel:
    """Occupancy-based Memory Channel timing model.

    All methods return the simulated time at which the written data is
    visible in the destination receive region(s); they also advance the
    internal busy-until bookkeeping.  The caller charges CPU time
    separately — the network model only accounts for the wire.
    """

    def __init__(self, engine, cluster: ClusterConfig, costs: CostModel):
        self.engine = engine
        self.cluster = cluster
        self.costs = costs
        self._link_busy: List[float] = [0.0] * cluster.n_nodes
        self._hub_busy: float = 0.0
        self.usage: List[LinkUsage] = [
            LinkUsage() for _ in range(cluster.n_nodes)
        ]
        self.total_bytes = 0

    # -- timing ---------------------------------------------------------

    def write(self, src_node: int, nbytes: int, broadcast: bool = False) -> float:
        """Schedule a remote write of ``nbytes`` from ``src_node``.

        Returns the absolute sim time at which the data is visible at the
        destination(s).  A broadcast occupies the hub once and is seen by
        every node (the hub replicates it), which is how Cashmere pushes
        directory updates.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        now = self.engine.now
        start = max(now, self._link_busy[src_node])
        link_end = start + nbytes / self.costs.mc_link_bandwidth
        hub_start = max(start, self._hub_busy)
        hub_end = hub_start + nbytes / self.costs.mc_aggregate_bandwidth
        done = max(link_end, hub_end)
        self._link_busy[src_node] = link_end
        self._hub_busy = hub_end
        self.usage[src_node].bytes_sent += nbytes
        self.usage[src_node].transfers += 1
        self.total_bytes += nbytes
        return done + self.costs.mc_latency

    def flush_time(self, src_node: int) -> float:
        """Sim time at which all writes issued so far from ``src_node``
        have drained (used by Cashmere releases to wait for write-through
        completion)."""
        return max(self._link_busy[src_node], 0.0) + self.costs.mc_latency

    # -- introspection ----------------------------------------------------

    @property
    def aggregate_bytes(self) -> int:
        return self.total_bytes
