"""Request/response messaging over the Memory Channel (or kernel UDP).

TreadMarks uses this layer for everything (it treats the Memory Channel
purely as a fast messaging system); Cashmere uses it only for page-fetch
requests, since directories, locks and write notices travel as plain
remote writes.

Two transports are modelled (Section 3.4):

* ``MEMORY_CHANNEL`` — user-level message buffers in MC space; when the
  two processes share a node the buffers live in ordinary shared memory
  and never touch the network.
* ``UDP`` — DEC's kernel-level UDP over MC: the same wire, plus a kernel
  crossing on each end of every message.

Requests are delivered into the target processor's mailbox; the reply
path never needs an interrupt because requesters spin (and service other
incoming requests re-entrantly while they spin).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.config import CostModel, Transport
from repro.cluster.machine import Cluster, Processor
from repro.cluster.network import MemoryChannel
from repro.sim import Engine, Event
from repro.stats import Category

LOCAL_MSG_LATENCY = 1.0  # us; same-node buffers in hardware-coherent memory


@dataclass
class Request:
    """One in-flight request, awaiting a reply."""

    kind: str
    requester: Processor
    payload: Any
    size: int
    reply_event: Event
    seq: int = field(default=0)
    replied: bool = False

    def __repr__(self) -> str:
        return f"<Request #{self.seq} {self.kind} from p{self.requester.pid}>"


class Messenger:
    """Sends requests and replies, charging CPU and wire costs."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        network: MemoryChannel,
        costs: CostModel,
        transport: Transport,
    ):
        self.engine = engine
        self.cluster = cluster
        self.network = network
        self.costs = costs
        self.transport = transport
        self._seq = itertools.count(1)

    # -- cost helpers ------------------------------------------------------

    @property
    def _cpu_per_msg(self) -> float:
        if self.transport is Transport.UDP:
            return self.costs.msg_cpu_udp
        return self.costs.msg_cpu_mc

    def _wire(self, src: Processor, dst: Processor, nbytes: int) -> float:
        """Absolute sim time at which ``nbytes`` land at ``dst``."""
        if src.node is dst.node:
            return self.engine.now + LOCAL_MSG_LATENCY
        return self.network.write(src.node.nid, nbytes)

    # -- request / reply ------------------------------------------------------

    def post_request(
        self,
        src: Processor,
        dst: Processor,
        kind: str,
        payload: Any = None,
        size: int = 0,
    ) -> Generator[Event, Any, Request]:
        """Send a request to ``dst`` and return the in-flight Request.

        The caller decides when (and whether) to block on
        ``request.reply_event`` — Cashmere and TreadMarks both overlap
        multiple outstanding requests at a fault.
        """
        request = Request(
            kind=kind,
            requester=src,
            payload=payload,
            size=size,
            reply_event=self.engine.event(),
            seq=next(self._seq),
        )
        nbytes = size + self.costs.msg_header
        marshal = 0.5 * self.costs.memcpy_cost(size)
        yield from src.busy(self._cpu_per_msg + marshal, Category.PROTOCOL)
        src.bump("messages")
        src.bump("data_bytes", nbytes)
        arrive = self._wire(src, dst, nbytes)
        recv_cpu = self._cpu_per_msg if self.transport is Transport.UDP else 0.0
        self.engine.call_at(
            max(arrive, self.engine.now) + recv_cpu,
            lambda: dst.deliver(request),
        )
        return request

    def request(
        self,
        src: Processor,
        dst: Processor,
        kind: str,
        payload: Any = None,
        size: int = 0,
    ) -> Generator[Event, Any, Any]:
        """Send a request and spin until the reply arrives."""
        req = yield from self.post_request(src, dst, kind, payload, size)
        return (yield from src.wait(req.reply_event))

    def reply(
        self,
        servicer: Processor,
        request: Request,
        payload: Any = None,
        size: int = 0,
    ) -> Generator[Event, Any, None]:
        """Send the reply for ``request`` from ``servicer``."""
        if request.replied:
            raise RuntimeError(f"{request!r} already replied")
        request.replied = True
        nbytes = size + self.costs.msg_header
        # Marshalling the payload into the transmit region moves it
        # across the server's bus once (the Memory Channel has no remote
        # reads, so data always flows through a CPU; payloads such as
        # fresh diffs are cache-hot).  Handlers serving *cold* data add
        # the read pass themselves.
        marshal = 0.5 * self.costs.memcpy_cost(size)
        yield from servicer.busy(
            self._cpu_per_msg + marshal, Category.PROTOCOL
        )
        servicer.bump("messages")
        servicer.bump("data_bytes", nbytes)
        arrive = self._wire(servicer, request.requester, nbytes)

        def land() -> None:
            if not request.reply_event.triggered:
                request.reply_event.succeed(payload)

        self.engine.call_at(max(arrive, self.engine.now), land)

    def forward(
        self,
        via: Processor,
        dst: Processor,
        request: Request,
        extra_bytes: int = 0,
    ) -> Generator[Event, Any, None]:
        """Forward an in-flight request to another processor (TreadMarks
        lock requests go manager -> current owner)."""
        nbytes = request.size + extra_bytes + self.costs.msg_header
        yield from via.busy(self._cpu_per_msg, Category.PROTOCOL)
        via.bump("messages")
        via.bump("data_bytes", nbytes)
        arrive = self._wire(via, dst, nbytes)
        recv_cpu = self._cpu_per_msg if self.transport is Transport.UDP else 0.0
        self.engine.call_at(
            max(arrive, self.engine.now) + recv_cpu,
            lambda: dst.deliver(request),
        )
