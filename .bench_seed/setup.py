"""Legacy setup shim: the execution environment has no network and no
``wheel`` package, so editable installs must go through
``setup.py develop`` rather than PEP 660."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'VM-Based Shared Memory on Low-Latency, "
        "Remote-Memory-Access Networks' (ISCA 1997)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro-dsm=repro.harness.cli:main"]},
)
