#!/usr/bin/env python
"""Watch the two protocols handle one producer/consumer handoff.

A minimal two-processor program — write a page, synchronize, read it —
annotated with every observable protocol event: faults, twins, diffs,
page transfers, directory traffic.  A compact way to see how differently
the systems implement the same memory model.

Usage::

    python examples/protocol_microscope.py
"""

import numpy as np

from repro import ALL_VARIANTS, RunConfig, run_program
from repro.core import Program, SharedArray
from repro.stats.trace import diff_traces


def setup(space, params):
    arr = SharedArray.alloc(space, "page", np.float64, (1024,))
    arr.initialize(np.zeros(1024))
    return {"arr": arr}


def worker(env, shared, params):
    arr = shared["arr"]
    if env.rank == 0:
        yield from arr.write_range(env, 0, np.arange(64, dtype=np.float64))
        yield from env.barrier(0)
    else:
        yield from env.barrier(0)
        data = yield from arr.read_range(env, 0, 64)
        assert data[63] == 63.0
    yield from env.barrier(1)
    env.stop_timer()
    return None


COUNTERS = (
    "read_faults",
    "write_faults",
    "page_transfers",
    "page_fetches",
    "twins_created",
    "diffs_created",
    "messages",
    "data_bytes",
    "write_through_bytes",
)


def main() -> None:
    program = Program("microscope", setup, worker)
    print("One page handoff (64 words written, then read remotely)\n")
    print(f"{'counter':<22}" + "".join(f"{v.name:>13}" for v in ALL_VARIANTS))
    rows = {name: [] for name in COUNTERS}
    times = []
    for variant in ALL_VARIANTS:
        result = run_program(
            program, RunConfig(variant=variant, nprocs=2), {}
        )
        agg = result.stats.aggregate_counters()
        for name in COUNTERS:
            rows[name].append(agg[name])
        times.append(result.exec_time)
    for name in COUNTERS:
        print(f"{name:<22}" + "".join(f"{v:>13}" for v in rows[name]))
    print(f"{'exec time (us)':<22}" + "".join(f"{t:>13.0f}" for t in times))
    print(
        "\nCashmere: write-through bytes + a whole-page transfer."
        "\nTreadMarks: a twin at the writer, then a diff with just the"
        " 64 changed words."
    )

    # Full event traces of the polling variants, side by side, through
    # the tracer's query API (see docs/OBSERVABILITY.md).
    from repro import CSM_POLL, TMK_MC_POLL

    traces = {}
    for variant in (CSM_POLL, TMK_MC_POLL):
        result = run_program(
            program, RunConfig(variant=variant, nprocs=2, trace=True), {}
        )
        traces[variant.name] = result.trace
        print(f"\n--- {variant.name} event trace ---")
        print(result.trace.render())

    # The same page, two coherence stories: its chronological history
    # under each protocol (every fault, transfer, twin, diff,
    # invalidation that names it).
    page = traces["csm_poll"].of_kind("write_fault")[0].get("page")
    for name, trace in traces.items():
        print(f"\n--- page {page} history under {name} ---")
        for event in trace.page_history(page):
            print(event)

    # Where did the handoff's time go?  Slice the consumer's timeline
    # around the first barrier episode.
    barrier = traces["tmk_mc_poll"].spans("barrier")[0]
    window = traces["tmk_mc_poll"].between(barrier.time, barrier.end)
    print(
        f"\n{len(window)} events inside p{barrier.pid}'s first barrier "
        f"episode ({barrier.dur:.1f}us)"
    )

    # And the structural comparison, aligned at the shared barriers.
    print("\n--- trace diff: csm_poll vs tmk_mc_poll ---")
    print(
        diff_traces(
            traces["csm_poll"], traces["tmk_mc_poll"],
            "csm_poll", "tmk_mc_poll",
        ).render()
    )


if __name__ == "__main__":
    main()
