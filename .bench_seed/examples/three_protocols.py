#!/usr/bin/env python
"""Three software DSM designs, one decade of protocol evolution.

The paper compares Cashmere (fine-grain, write-through to homes) and
TreadMarks (coarse-grain, lazy twins/diffs) and asks in closing which
way the field should go.  This package also implements where it *did*
go: home-based LRC, which keeps TreadMarks' lazy consistency metadata
but moves data like Cashmere — eager diffs to a home, one-message page
validation.

This example races all three (polling variants) on three sharing
patterns and prints the trade-off matrix.

Usage::

    python examples/three_protocols.py [nprocs]
"""

import sys

from repro import CSM_POLL, HLRC_POLL, TMK_MC_POLL, RunConfig, run_program
from repro.apps import registry
from repro.core import run_sequential

APPS = ("sor", "ilink", "barnes")  # banded, sparse, false sharing
VARIANTS = (CSM_POLL, TMK_MC_POLL, HLRC_POLL)


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(f"{nprocs} processors; speedup over the unlinked sequential run,")
    print("with protocol messages and wire bytes in parentheses\n")
    header = f"{'app':<8}" + "".join(f"{v.name:>26}" for v in VARIANTS)
    print(header)
    for app_name in APPS:
        module = registry.load(app_name)
        program = module.program()
        params = module.default_params("small")
        seq = run_sequential(program, params)
        cells = []
        for variant in VARIANTS:
            result = run_program(
                program,
                RunConfig(variant=variant, nprocs=nprocs, warm_start=True),
                params,
            )
            speedup = result.speedup_over(seq.exec_time)
            messages = result.counter("messages")
            wire_kb = result.network_bytes / 1024
            cells.append(
                f"{speedup:6.2f}x ({messages:>6,} / {wire_kb:>6,.0f}K)"
            )
        print(f"{app_name:<8}" + "".join(f"{c:>26}" for c in cells))
    print(
        "\nReading the matrix:"
        "\n  sor    - banded writers: all three scale; TreadMarks pays"
        " twin/diff and barrier-metadata overheads per iteration."
        "\n  ilink  - sparse writes: TreadMarks' thin diffs move the"
        " fewest bytes; whole-page readers (csm, hlrc) move pages."
        "\n  barnes - multi-writer false sharing: home-based merging"
        " (csm, hlrc) needs a fraction of TreadMarks' messages."
    )


if __name__ == "__main__":
    main()
