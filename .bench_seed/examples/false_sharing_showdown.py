#!/usr/bin/env python
"""The paper's Barnes result, distilled: multi-writer false sharing.

Many processors write interleaved words of the same pages between
barriers.  Cashmere merges all the writes through the home-node copy
(one page fetch brings everything); TreadMarks must collect a diff from
*every* writer of every page.  This is exactly why "Cashmere outperforms
TreadMarks on Barnes" (Section 4.3) — and this example lets you watch
the message counts diverge as writers are added.

Usage::

    python examples/false_sharing_showdown.py
"""

import numpy as np

from repro import CSM_POLL, TMK_MC_POLL, RunConfig, run_program
from repro.core import Program, SharedArray

CELLS = 4096  # four 8 KB pages of 8-byte cells
ITERS = 4
US_PER_CELL = 2.0


def setup(space, params):
    arr = SharedArray.alloc(space, "cells", np.float64, (CELLS,))
    arr.initialize(np.zeros(CELLS))
    return {"arr": arr}


def worker(env, shared, params):
    """Every processor writes an interleaved subset of every page, then
    everyone reads the whole array — the Barnes sharing pattern."""
    arr = shared["arr"]
    mine = list(range(env.rank, CELLS, env.nprocs))
    for it in range(ITERS):
        for idx in mine:
            yield from arr.put(env, idx, it * 10000.0 + idx)
        yield from env.compute(len(mine) * US_PER_CELL, polls=len(mine))
        yield from env.barrier(0)
        _ = yield from arr.read_range(env, 0, CELLS)
        yield from env.barrier(1)
    env.stop_timer()
    return None


def main() -> None:
    program = Program("false_sharing", setup, worker)
    print(f"{CELLS} cells across {CELLS * 8 // 8192} pages, "
          f"{ITERS} iterations, interleaved writers\n")
    header = (
        f"{'P':>3} {'csm time':>10} {'tmk time':>10} {'csm/tmk':>8}"
        f" {'csm transfers':>14} {'tmk messages':>13} {'tmk diffs':>10}"
    )
    print(header)
    for nprocs in (2, 4, 8, 16, 32):
        csm = run_program(
            program, RunConfig(variant=CSM_POLL, nprocs=nprocs), {}
        )
        tmk = run_program(
            program, RunConfig(variant=TMK_MC_POLL, nprocs=nprocs), {}
        )
        ratio = csm.exec_time / tmk.exec_time
        print(
            f"{nprocs:>3} {csm.exec_time / 1e3:>9.1f}ms"
            f" {tmk.exec_time / 1e3:>9.1f}ms {ratio:>8.2f}"
            f" {csm.counter('page_transfers'):>14}"
            f" {tmk.counter('messages'):>13}"
            f" {tmk.counter('diffs_created'):>10}"
        )
    print(
        "\nAs writers per page grow, TreadMarks' per-writer diff"
        " exchanges overtake Cashmere's single home-copy fetch."
    )


if __name__ == "__main__":
    main()
