#!/usr/bin/env python
"""Quickstart: run one application on both DSM systems and compare.

Runs Red-Black SOR sequentially (the paper's Table 2 baseline) and then
on 8 simulated processors under Cashmere and TreadMarks, verifying that
both protocols produce exactly the data the sequential run produced, and
printing the speedups and the Figure 6-style time breakdown.

Usage::

    python examples/quickstart.py [nprocs]
"""

import sys

import numpy as np

from repro import CSM_POLL, TMK_MC_POLL, RunConfig, run_program, run_sequential
from repro.apps import sor
from repro.stats import Category


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    app = sor.program()
    params = sor.default_params("small")
    print(f"Red-Black SOR, {params['rows']}x{params['cols']} grid, "
          f"{params['iters']} iterations, {nprocs} processors\n")

    sequential = run_sequential(app, params)
    print(f"sequential (no DSM linked): {sequential.exec_time / 1e6:.3f} "
          "simulated seconds")

    for variant in (CSM_POLL, TMK_MC_POLL):
        result = run_program(
            app, RunConfig(variant=variant, nprocs=nprocs), params
        )
        matches = np.allclose(result.values[0][1], sequential.values[0][1])
        speedup = result.speedup_over(sequential.exec_time)
        print(f"\n{variant.name}:")
        print(f"  execution time : {result.exec_time / 1e6:.3f} s "
              f"(speedup {speedup:.2f}x)")
        print(f"  data correct   : {matches}")
        fractions = result.breakdown.fractions()
        bars = "  breakdown      : " + "  ".join(
            f"{c.value}={fractions[c]:.0%}" for c in Category
        )
        print(bars)
        agg = result.stats.aggregate_counters()
        print(f"  read faults    : {agg['read_faults']}")
        print(f"  write faults   : {agg['write_faults']}")
        if agg["page_transfers"]:
            print(f"  page transfers : {agg['page_transfers']}")
        if agg["diffs_created"]:
            print(f"  diffs created  : {agg['diffs_created']}")


if __name__ == "__main__":
    main()
