#!/usr/bin/env python
"""The paper's closing claim, tested: better networks favour Cashmere.

"The second-generation Memory Channel, due on the market very soon, will
have something like half the latency, and an order of magnitude more
bandwidth.  Finer-grain DSM systems are in a position to make excellent
use of this sort of hardware as it becomes available."

This example runs SOR and the false-sharing kernel on the modelled
first- and second-generation networks and reports how much each system
gains — Cashmere, whose write-through and whole-page fetches are
bandwidth-bound, should gain more.

Usage::

    python examples/second_generation_network.py
"""

import numpy as np

from repro import (
    CSM_POLL,
    TMK_MC_POLL,
    CostModel,
    RunConfig,
    run_program,
    run_sequential,
)
from repro.apps import sor


def main() -> None:
    app = sor.program()
    params = sor.default_params("small")
    sequential = run_sequential(app, params)
    nprocs = 16
    print(f"SOR on {nprocs} processors, first- vs second-generation "
          "Memory Channel\n")
    print(f"{'variant':<13}{'MC1 speedup':>12}{'MC2 speedup':>12}"
          f"{'gain':>7}")
    gains = {}
    for variant in (CSM_POLL, TMK_MC_POLL):
        first = run_program(
            app,
            RunConfig(variant=variant, nprocs=nprocs, warm_start=True),
            params,
        )
        second = run_program(
            app,
            RunConfig(
                variant=variant,
                nprocs=nprocs,
                costs=CostModel.second_generation(),
                warm_start=True,
            ),
            params,
        )
        s1 = first.speedup_over(sequential.exec_time)
        s2 = second.speedup_over(sequential.exec_time)
        gains[variant.name] = s2 / s1
        print(f"{variant.name:<13}{s1:>12.2f}{s2:>12.2f}"
              f"{s2 / s1:>6.2f}x")
    if gains["csm_poll"] > gains["tmk_mc_poll"]:
        print("\nAs the paper anticipated: the finer-grain protocol "
              "(Cashmere) benefits more from the better network.")
    else:
        print("\nUnexpected: TreadMarks gained more — inspect the "
              "breakdowns to see which cost dominated.")


if __name__ == "__main__":
    main()
