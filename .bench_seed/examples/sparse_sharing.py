#!/usr/bin/env python
"""The paper's Ilink result, distilled: sparse writes favour diffs.

When only a small fraction of each page changes between synchronization
operations, TreadMarks ships tiny run-length diffs while Cashmere must
move whole 8 KB pages ("the diffs of TreadMarks result in less data
communication than the page reads of Memory-Channel Cashmere",
Section 4.3).  This example sweeps the dirty fraction and prints the
bytes each system puts on the wire.

Usage::

    python examples/sparse_sharing.py
"""

import numpy as np

from repro import CSM_POLL, TMK_MC_POLL, RunConfig, run_program
from repro.core import Program, SharedArray

ELEMS = 8192  # eight 8 KB pages
ITERS = 3


def make_program(dirty_fraction):
    stride = max(1, int(1 / dirty_fraction))

    def setup(space, params):
        arr = SharedArray.alloc(space, "pool", np.float64, (ELEMS,))
        arr.initialize(np.ones(ELEMS))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            # The producer dirties a sparse subset of every page.
            for it in range(ITERS):
                for idx in range(0, ELEMS, stride):
                    value = yield from arr.get(env, idx)
                    yield from arr.put(env, idx, value * 1.001)
                yield from env.barrier(0)
                yield from env.barrier(1)
        else:
            # Consumers read the whole pool each iteration.
            for it in range(ITERS):
                yield from env.barrier(0)
                _ = yield from arr.read_range(env, 0, ELEMS)
                yield from env.barrier(1)
        env.stop_timer()
        return None

    return Program("sparse", setup, worker)


def main() -> None:
    print(f"{ELEMS * 8 // 8192} pages, {ITERS} iterations, "
          "1 producer + 7 consumers\n")
    print(f"{'dirty %':>8} {'csm wire KB':>12} {'tmk wire KB':>12} "
          f"{'tmk/csm':>8}")
    for dirty in (0.01, 0.03, 0.10, 0.30, 1.00):
        program = make_program(dirty)
        csm = run_program(program, RunConfig(variant=CSM_POLL, nprocs=8), {})
        tmk = run_program(
            program, RunConfig(variant=TMK_MC_POLL, nprocs=8), {}
        )
        csm_kb = csm.network_bytes / 1024.0
        tmk_kb = tmk.network_bytes / 1024.0
        print(
            f"{dirty:>8.0%} {csm_kb:>12.1f} {tmk_kb:>12.1f}"
            f" {tmk_kb / csm_kb:>8.2f}"
        )
    print(
        "\nAt low dirty fractions TreadMarks moves a small fraction of"
        " Cashmere's bytes; as pages become fully dirty the advantage"
        " disappears (a full-page diff is a page plus headers)."
    )


if __name__ == "__main__":
    main()
