"""Regenerate Figure 5: speedup curves for all six protocol variants.

One benchmark per application, sweeping processor counts for all six
variants.  Shape assertions encode the paper's Section 4.3 findings:

* polling beats interrupts for both systems at larger counts;
* Cashmere beats TreadMarks on Barnes (false sharing);
* TreadMarks wins (or ties) on LU and Gauss (write-doubling cache
  pressure);
* TSP scales well for every protocol.
"""

import pytest

from repro.config import (
    CSM_INT,
    CSM_POLL,
    TMK_MC_INT,
    TMK_MC_POLL,
    TMK_UDP_INT,
    CSM_PP,
)
from repro.apps import registry
from repro.harness import figure5

from conftest import run_once

COUNTS = (1, 4, 8, 16, 32)


def _curves_for(ctx, app):
    return figure5.generate(ctx, apps=[app], counts=COUNTS)


def _points(curves, variant_name):
    return next(c.points for c in curves if c.variant == variant_name)


@pytest.mark.parametrize("app", registry.APP_NAMES)
def test_figure5_app(benchmark, ctx, app):
    curves = run_once(benchmark, lambda: _curves_for(ctx, app))
    print()
    print(figure5.render(curves))
    for curve in curves:
        benchmark.extra_info[curve.variant] = dict(curve.points)

    csm_poll = _points(curves, "csm_poll")
    tmk_poll = _points(curves, "tmk_mc_poll")
    if app == "ilink":
        # Ilink's master-side reduction is the paper's "inherent serial
        # component"; at simulation scale it dominates and neither
        # system exceeds the sequential time.  TreadMarks still beats
        # Cashmere on it at every count (sparse diffs vs. page reads).
        for n in (8, 16, 32):
            assert tmk_poll[n] > csm_poll[n]
        return
    # Every system must actually speed the application up somewhere.
    assert max(csm_poll.values()) > 1.0
    assert max(tmk_poll.values()) > 1.0

    # Polling is never worse than interrupts at 16+ processors
    # (Section 4.3: "polling ... is uniformly better than fielding
    # signals ... for larger numbers of processors").
    csm_int = _points(curves, "csm_int")
    tmk_int = _points(curves, "tmk_mc_int")
    assert csm_poll[16] >= csm_int[16] * 0.95
    assert tmk_poll[16] >= tmk_int[16] * 0.95

    if app in ("lu", "gauss"):
        # "TreadMarks outperforms Cashmere by significant amounts on LU
        # and Gauss" — the write-doubling cache pressure.
        assert tmk_poll[8] > csm_poll[8]
        assert tmk_poll[16] > csm_poll[16]
    if app == "barnes":
        # The paper has Cashmere clearly ahead; at simulation scale the
        # two land within ~15% (EXPERIMENTS.md discusses why the gap
        # narrows), so the check guards comparability, and Table 3's
        # message-count ratio carries the paper's mechanism.
        assert csm_poll[16] >= 0.8 * tmk_poll[16]
    if app == "tsp":
        # "TSP displays nearly linear speedup for all our protocols";
        # at simulation scale the queue critical section caps scaling
        # lower, but both systems keep improving through 32 processors.
        assert csm_poll[16] > 3 and tmk_poll[16] > 3
        assert csm_poll[32] > csm_poll[8]
    if app == "sor":
        # Both systems scale well on SOR (Section 4.3: "speedups are
        # also reasonable in SOR").
        assert csm_poll[32] > 6
        assert tmk_poll[32] > 3
