"""Extension: home-based LRC against the paper's two systems.

The paper closes by saying "we intend to study alternative fine-grain
protocols in more detail"; HLRC is the alternative the field converged
on.  These benches place it on the paper's own axes:

* On multi-writer false sharing (Barnes) it should behave like
  Cashmere: readers make ONE page fetch from the home instead of
  collecting a diff from every writer.
* On sparse data (Ilink) it should behave like Cashmere too (whole-page
  reads), giving up TreadMarks' thin-diff advantage — protocols are
  trade-offs, not strict improvements.
"""

from repro.config import CSM_POLL, HLRC_POLL, TMK_MC_POLL

from conftest import run_once


def test_hlrc_on_false_sharing(benchmark, ctx):
    def measure():
        out = {}
        for variant in (CSM_POLL, TMK_MC_POLL, HLRC_POLL):
            seq = ctx.sequential("barnes")
            run = ctx.run("barnes", variant, 16)
            out[variant.name] = (
                run.speedup_over(seq.exec_time),
                run.counter("messages"),
            )
        return out

    results = run_once(benchmark, measure)
    print()
    for name, (speedup, messages) in results.items():
        print(f"  {name:<12} speedup={speedup:5.2f}  messages={messages:,}")
    benchmark.extra_info.update(
        {name: speedup for name, (speedup, _) in results.items()}
    )
    # HLRC's message count sits near Cashmere's, far under TreadMarks'.
    assert results["hlrc_poll"][1] < results["tmk_mc_poll"][1] / 2
    # And it is competitive on speedup with both.
    assert results["hlrc_poll"][0] > 0.7 * max(
        results["csm_poll"][0], results["tmk_mc_poll"][0]
    )


def test_hlrc_gives_up_sparse_advantage(benchmark, ctx):
    def measure():
        out = {}
        for variant in (CSM_POLL, TMK_MC_POLL, HLRC_POLL):
            run = ctx.run("ilink", variant, 16)
            out[variant.name] = run.network_bytes
        return out

    wire = run_once(benchmark, measure)
    print()
    for name, nbytes in wire.items():
        print(f"  {name:<12} wire={nbytes / 1024:,.0f} KB")
    benchmark.extra_info.update(wire)
    # Whole-page readers move roughly Cashmere-like volumes; TreadMarks'
    # diffs stay the leanest on sparse data.
    assert wire["tmk_mc_poll"] < wire["hlrc_poll"]
    assert wire["tmk_mc_poll"] < wire["csm_poll"]


def test_hlrc_scales_on_sor(benchmark, ctx):
    def measure():
        seq = ctx.sequential("sor")
        return {
            n: ctx.run("sor", HLRC_POLL, n).speedup_over(seq.exec_time)
            for n in (8, 16, 32)
        }

    speedups = run_once(benchmark, measure)
    print()
    print("  sor hlrc_poll:", speedups)
    benchmark.extra_info.update({str(k): v for k, v in speedups.items()})
    assert speedups[32] > speedups[8] > 1.0
