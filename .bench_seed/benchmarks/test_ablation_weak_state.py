"""Ablation: the implemented protocol vs. the simulation studies' weak
state.

"We have also made modifications to the protocol itself.  In particular
we have removed the weak state ... The current protocol opts instead for
the exclusive mode and for explicit write notices ...  These two
enhancements improve Cashmere's ability to efficiently handle private
pages and producer-consumer sharing patterns" (Section 2.1).

SOR's interior band pages are exactly such private pages: under the
weak state every processor re-invalidates and re-faults its own band at
every barrier.
"""

from repro.config import CSM_POLL

from conftest import run_once


def test_weak_state_regression_on_sor(benchmark, ctx):
    def measure():
        modern = ctx.run("sor", CSM_POLL, 8)
        weak = ctx.run("sor", CSM_POLL, 8, weak_state=True)
        return modern, weak

    modern, weak = run_once(benchmark, measure)
    print(
        f"\nexclusive+notices: {modern.exec_time / 1e6:.3f}s "
        f"({modern.counter('write_faults')} write faults, "
        f"{modern.counter('page_transfers')} transfers)"
        f"\nweak state       : {weak.exec_time / 1e6:.3f}s "
        f"({weak.counter('write_faults')} write faults, "
        f"{weak.counter('page_transfers')} transfers)"
    )
    benchmark.extra_info.update(
        modern_seconds=modern.exec_time / 1e6,
        weak_seconds=weak.exec_time / 1e6,
        modern_write_faults=modern.counter("write_faults"),
        weak_write_faults=weak.counter("write_faults"),
    )
    assert weak.counter("write_faults") > 2 * modern.counter("write_faults")
    assert weak.exec_time > modern.exec_time