"""Ablation: first-touch vs. round-robin home-node assignment.

"The choice of home node can have a significant impact on performance.
The home node itself can access the page directly, while the remaining
processors have to use the slower Memory Channel interface.  We assign
home nodes at run time, based on which processor first touches a page"
(Section 2.1).  With round-robin homes, SOR's interior writes leave the
node: write-through traffic and page fetches both grow.
"""

from repro.config import CSM_POLL

from conftest import run_once


def test_first_touch_beats_round_robin_on_sor(benchmark, ctx):
    def measure():
        first_touch = ctx.run("sor", CSM_POLL, 8)
        round_robin = ctx.run("sor", CSM_POLL, 8, first_touch_homes=False)
        return first_touch, round_robin

    first_touch, round_robin = run_once(benchmark, measure)
    ft_wt = first_touch.counter("write_through_bytes")
    rr_wt = round_robin.counter("write_through_bytes")
    print(
        f"\nfirst touch : {first_touch.exec_time / 1e6:.3f}s, "
        f"{ft_wt / 1024:.0f} KB write-through"
        f"\nround robin : {round_robin.exec_time / 1e6:.3f}s, "
        f"{rr_wt / 1024:.0f} KB write-through"
    )
    benchmark.extra_info.update(
        first_touch_seconds=first_touch.exec_time / 1e6,
        round_robin_seconds=round_robin.exec_time / 1e6,
        first_touch_wt_kb=ft_wt / 1024,
        round_robin_wt_kb=rr_wt / 1024,
    )
    assert rr_wt > 2 * ft_wt
    assert round_robin.exec_time > first_touch.exec_time
