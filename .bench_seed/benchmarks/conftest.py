"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation) and records the simulated results in ``benchmark.extra_info``
so they appear in the pytest-benchmark report.  Simulated runs are
deterministic, so each benchmark executes a single round.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    """One shared context so sequential baselines are computed once."""
    return ExperimentContext(scale="small")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
