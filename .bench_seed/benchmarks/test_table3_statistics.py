"""Regenerate Table 3: detailed statistics for the polling variants at
32 processors (16 for Barnes).

Shape checks mirror the paper's table: both systems fault at page
granularity, Cashmere reports page transfers where TreadMarks reports
messages and data, and TreadMarks' message counts dwarf Cashmere's
request counts on barrier-heavy applications.
"""

import pytest

from repro.apps import registry
from repro.harness import table3

from conftest import run_once

APPS = list(registry.APP_NAMES)


@pytest.mark.parametrize("app", APPS)
def test_table3_app(benchmark, ctx, app):
    cells = run_once(benchmark, lambda: table3.generate(ctx, apps=[app]))
    print()
    print(table3.render(cells))
    csm = next(c for c in cells if c.system == "CSM")
    tmk = next(c for c in cells if c.system == "TMK")
    benchmark.extra_info["csm"] = vars(csm)
    benchmark.extra_info["tmk"] = vars(tmk)

    assert csm.nprocs == (16 if app == "barnes" else 32)
    assert csm.exec_seconds > 0 and tmk.exec_seconds > 0
    # Same program structure: identical synchronization counts.
    # (TSP is nondeterministic — the amount of search, and hence the
    # lock count, varies with the schedule, as the paper notes.)
    assert csm.barriers == tmk.barriers
    if app != "tsp":
        assert csm.locks == tmk.locks
    # System-specific communication metrics.
    assert csm.page_transfers > 0
    assert tmk.messages > 0 and tmk.data_kbytes > 0
