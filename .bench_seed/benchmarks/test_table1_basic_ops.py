"""Regenerate Table 1: cost of basic operations for all six variants.

Paper values (partially OCR-damaged in the source text) put Cashmere's
MC-array lock at ~11 us, barriers at tens (2 procs) to hundreds
(16 procs) of microseconds, kernel-UDP TreadMarks operations several
times more expensive than user-level MC ones, and page transfers around
a millisecond.  The assertions check those *shapes*.
"""

from repro.harness import table1

from conftest import run_once


def test_table1(benchmark, ctx):
    rows = run_once(benchmark, lambda: table1.generate(ctx))
    print()
    print(table1.render(rows))
    by_name = {row.variant: row for row in rows}
    for row in rows:
        benchmark.extra_info[row.variant] = row.as_dict()

    # Shape: Cashmere locks are raw MC writes (~11 us); TreadMarks locks
    # are request/response and cost more; kernel UDP costs the most.
    assert by_name["csm_poll"].lock_acquire < 20
    assert (
        by_name["tmk_mc_poll"].lock_acquire
        > by_name["csm_poll"].lock_acquire
    )
    assert (
        by_name["tmk_udp_int"].lock_acquire
        > 3 * by_name["tmk_mc_poll"].lock_acquire
    )
    # Shape: 16-processor barriers cost several times the 2-processor
    # ones, and TreadMarks' centralized barrier scales worse than
    # Cashmere's MC tree barrier.
    for row in rows:
        assert row.barrier_16 > 2 * row.barrier_2
    assert by_name["tmk_mc_poll"].barrier_16 > by_name["csm_poll"].barrier_16
    # Shape: page transfers land near a millisecond on every system.
    for row in rows:
        assert 500 < row.page_transfer < 3000
