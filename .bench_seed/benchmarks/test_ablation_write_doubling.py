"""Ablation: the paper's dummy-address write-doubling diagnostic.

"In both cases, modifying the write-doubling code in the Cashmere
version so that it doubles all writes to a single dummy address reduces
the run time to only slightly more than TreadMarks" (Section 4.3).

One-processor LU and Gauss runs, with normal doubling vs. dummy-address
doubling: the dummy run removes the cache-footprint penalty while
keeping the doubled-instruction overhead, and should land close to the
TreadMarks single-processor time.
"""

import pytest

from repro.config import CSM_POLL, TMK_MC_POLL

from conftest import run_once


# The dummy run keeps the doubled-instruction overhead, so it lands a
# little above TreadMarks; Gauss's margin is wider at simulation scale
# because its scaled problem has fewer flops per written word than the
# paper's 2046-column rows (see EXPERIMENTS.md).
MARGIN = {"lu": 1.25, "gauss": 1.45}


@pytest.mark.parametrize("app", ("lu", "gauss"))
def test_dummy_doubling_recovers_treadmarks_time(benchmark, ctx, app):
    def measure():
        normal = ctx.run(app, CSM_POLL, 1)
        dummy = ctx.run(app, CSM_POLL, 1, write_double_dummy=True)
        tmk = ctx.run(app, TMK_MC_POLL, 1)
        return normal.exec_time, dummy.exec_time, tmk.exec_time

    normal, dummy, tmk = run_once(benchmark, measure)
    print(
        f"\n{app}: csm={normal / 1e6:.3f}s  csm-dummy={dummy / 1e6:.3f}s  "
        f"tmk={tmk / 1e6:.3f}s"
    )
    benchmark.extra_info.update(
        csm_seconds=normal / 1e6,
        csm_dummy_seconds=dummy / 1e6,
        tmk_seconds=tmk / 1e6,
    )
    # The cache effect exists and the dummy diagnostic removes it.
    assert normal > dummy
    # "...reduces the run time to only slightly more than TreadMarks."
    assert dummy < tmk * MARGIN[app]
    assert dummy >= tmk * 0.8
