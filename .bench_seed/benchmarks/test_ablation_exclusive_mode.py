"""Ablation: Cashmere's exclusive-mode optimisation.

The implemented protocol replaced the simulated protocol's "weak state"
with exclusive mode + explicit write notices: "pages in exclusive mode
experience only the initial write fault, the minimum of possible
protocol overhead" (Section 2.1).  Disabling it forces every writer to
re-fault and re-publish after every release — visible as extra write
faults and extra time on SOR, whose interior band pages have exactly one
writer and no other sharers.
"""

from repro.config import CSM_POLL

from conftest import run_once


def test_exclusive_mode_saves_faults_on_sor(benchmark, ctx):
    def measure():
        on = ctx.run("sor", CSM_POLL, 8)
        off = ctx.run("sor", CSM_POLL, 8, exclusive_mode=False)
        return on, off

    on, off = run_once(benchmark, measure)
    on_faults = on.counter("write_faults")
    off_faults = off.counter("write_faults")
    print(
        f"\nexclusive on : {on.exec_time / 1e6:.3f}s, "
        f"{on_faults} write faults"
        f"\nexclusive off: {off.exec_time / 1e6:.3f}s, "
        f"{off_faults} write faults"
    )
    benchmark.extra_info.update(
        on_seconds=on.exec_time / 1e6,
        off_seconds=off.exec_time / 1e6,
        on_write_faults=on_faults,
        off_write_faults=off_faults,
    )
    assert off_faults > 2 * on_faults
    assert off.exec_time > on.exec_time
