"""Ablation: cold data distribution vs. steady state.

At the paper's scale, runs last minutes and distributing the data set
over the 32 MB/s hub once is negligible; at simulation scale it can
dominate TreadMarks runs (every page moves from its manager at first
touch, while Cashmere's first-touch homing makes most first touches
local).  ``warm_start`` pre-validates copies everywhere to isolate the
steady-state protocol comparison; this benchmark quantifies the gap that
EXPERIMENTS.md discusses.
"""

from repro.config import TMK_MC_POLL, CSM_POLL
from repro.harness.runner import ExperimentContext

from conftest import run_once


def test_warm_start_quantifies_cold_cost(benchmark, ctx):
    cold_ctx = ExperimentContext(scale=ctx.scale, warm_start=False)

    def measure():
        cold = cold_ctx.run("sor", TMK_MC_POLL, 16)
        warm = ctx.run("sor", TMK_MC_POLL, 16)
        cold_csm = cold_ctx.run("sor", CSM_POLL, 16)
        warm_csm = ctx.run("sor", CSM_POLL, 16)
        return cold, warm, cold_csm, warm_csm

    cold, warm, cold_csm, warm_csm = run_once(benchmark, measure)
    tmk_saving = 1.0 - warm.exec_time / cold.exec_time
    csm_saving = 1.0 - warm_csm.exec_time / cold_csm.exec_time
    print(
        f"\ntmk: cold {cold.exec_time / 1e6:.3f}s -> warm "
        f"{warm.exec_time / 1e6:.3f}s ({tmk_saving:.0%} cold-start)"
        f"\ncsm: cold {cold_csm.exec_time / 1e6:.3f}s -> warm "
        f"{warm_csm.exec_time / 1e6:.3f}s ({csm_saving:.0%} cold-start)"
    )
    benchmark.extra_info.update(
        tmk_cold_seconds=cold.exec_time / 1e6,
        tmk_warm_seconds=warm.exec_time / 1e6,
        csm_cold_seconds=cold_csm.exec_time / 1e6,
        csm_warm_seconds=warm_csm.exec_time / 1e6,
    )
    # TreadMarks' cold start is the heavy one; warming must remove the
    # full-page fetches entirely.
    assert warm.exec_time < cold.exec_time
    assert warm.counter("page_fetches") == 0
    # Cashmere's first-touch homing already makes cold start cheap.
    assert tmk_saving > csm_saving
