"""Ablation: hypothetical hardware remote reads.

"[The Memory Channel] lacks remote reads, forcing Cashmere to copy
pages to local memory ..., and to engage the active assistance of a
remote processor in order to make the copy.  With equal numbers of
compute processors, Cashmere usually performs best when an additional
processor per node is dedicated to servicing remote requests, implying
that remote-read hardware would improve performance further."

``remote_reads=True`` models the real thing: page fetches stream from
the home node's memory with no remote CPU and a single bus crossing.
The ordering the paper predicts is csm_poll <= csm_pp <= csm_rr.
"""

from repro.config import CSM_POLL, CSM_PP

from conftest import run_once


def test_remote_reads_beat_the_pp_emulation(benchmark, ctx):
    def measure():
        seq = ctx.sequential("barnes")  # the most fetch-heavy application
        poll = ctx.run("barnes", CSM_POLL, 16)
        pp = ctx.run("barnes", CSM_PP, 16)
        rr = ctx.run("barnes", CSM_POLL, 16, remote_reads=True)
        return {
            "csm_poll": poll.speedup_over(seq.exec_time),
            "csm_pp": pp.speedup_over(seq.exec_time),
            "csm_rr": rr.speedup_over(seq.exec_time),
        }

    speedups = run_once(benchmark, measure)
    print()
    for name, value in speedups.items():
        print(f"  {name:<10} {value:5.2f}")
    benchmark.extra_info.update(speedups)
    # True remote reads beat both software mechanisms; the dedicated
    # processor is a conservative emulation of them (Section 3.2).
    assert speedups["csm_rr"] > speedups["csm_poll"]
    assert speedups["csm_rr"] >= speedups["csm_pp"]
