"""Regenerate Figure 6: normalized execution-time breakdowns for the
polling variants at 32 processors (16 for Barnes).

Shape assertions from the paper's discussion:

* write doubling is a substantial fraction of Cashmere's SOR, LU, and
  Gauss bars (19%, 21%, 27% in the paper);
* TreadMarks pays no write doubling, ever;
* TreadMarks spends a larger fraction in protocol code (twins + diffs)
  than Cashmere on SOR/Em3d-style banded applications.
"""

import pytest

from repro.apps import registry
from repro.harness import figure6
from repro.stats import Category

from conftest import run_once


@pytest.mark.parametrize("app", registry.APP_NAMES)
def test_figure6_app(benchmark, ctx, app):
    bars = run_once(benchmark, lambda: figure6.generate(ctx, apps=[app]))
    print()
    print(figure6.render(bars))
    csm = next(b for b in bars if b.system == "CSM")
    tmk = next(b for b in bars if b.system == "TMK")
    benchmark.extra_info["csm"] = {
        c.value: v for c, v in csm.normalized.items()
    }
    benchmark.extra_info["tmk"] = {
        c.value: v for c, v in tmk.normalized.items()
    }

    assert csm.total == pytest.approx(1.0)
    assert tmk.normalized[Category.WDOUBLE] == 0.0
    assert csm.normalized[Category.USER] > 0
    if app in ("sor", "lu"):
        # Write doubling is a visible slice of the Cashmere bar.  (At
        # 32 processors our scaled Gauss is pivot-communication-bound,
        # so its doubling slice shrinks; the single-processor dummy
        # ablation carries that application's doubling story.)
        assert csm.normalized[Category.WDOUBLE] > 0.04
