"""Ablation: the second-generation Memory Channel projection.

"The second-generation Memory Channel ... will have something like half
the latency, and an order of magnitude more bandwidth.  Finer-grain DSM
systems are in a position to make excellent use of this sort of
hardware" (Sections 1 and 6).  Cashmere's write-through and whole-page
fetches are bandwidth-bound, so it should gain more than TreadMarks from
the better network.
"""

from dataclasses import replace

from repro.config import CSM_POLL, TMK_MC_POLL, CostModel
from repro.harness.runner import ExperimentContext

from conftest import run_once


def test_mc2_helps_cashmere_more(benchmark, ctx):
    mc2 = ExperimentContext(scale=ctx.scale, costs=CostModel.second_generation())

    def measure():
        out = {}
        for name, context in (("mc1", ctx), ("mc2", mc2)):
            for variant in (CSM_POLL, TMK_MC_POLL):
                seq = context.sequential("sor")
                run = context.run("sor", variant, 16)
                out[(name, variant.name)] = run.speedup_over(seq.exec_time)
        return out

    speedups = run_once(benchmark, measure)
    csm_gain = speedups[("mc2", "csm_poll")] / speedups[("mc1", "csm_poll")]
    tmk_gain = (
        speedups[("mc2", "tmk_mc_poll")] / speedups[("mc1", "tmk_mc_poll")]
    )
    print(
        f"\nSOR at 16 procs: csm {speedups[('mc1', 'csm_poll')]:.2f} -> "
        f"{speedups[('mc2', 'csm_poll')]:.2f} ({csm_gain:.2f}x), "
        f"tmk {speedups[('mc1', 'tmk_mc_poll')]:.2f} -> "
        f"{speedups[('mc2', 'tmk_mc_poll')]:.2f} ({tmk_gain:.2f}x)"
    )
    benchmark.extra_info.update(
        {f"{k[0]}_{k[1]}": v for k, v in speedups.items()}
    )
    # Both systems improve; the finer-grain system improves at least as
    # much (the paper's forward-looking claim).
    assert csm_gain > 1.05
    assert tmk_gain > 1.0
    assert csm_gain >= tmk_gain * 0.95
