"""Ablation: SMP clustering — the same 16 processors arranged as
16x1, 8x2, or 4x4 nodes.

Cashmere exploits hardware coherence inside a node (home-node processors
access the master copy directly; same-node messages skip the wire), so
it should gain more from fatter nodes than TreadMarks, which "does not
use ... intra-node sharing except message buffers" (Section 3.4).
"""

from repro.config import CSM_POLL, TMK_MC_POLL, ClusterConfig
from repro.harness.runner import ExperimentContext

from conftest import run_once

SHAPES = {
    "16x1": ClusterConfig(n_nodes=16, cpus_per_node=1),
    "8x2": ClusterConfig(n_nodes=8, cpus_per_node=2),
    "4x4": ClusterConfig(n_nodes=4, cpus_per_node=4),
}


def test_fat_nodes_help_cashmere_more(benchmark, ctx):
    def measure():
        out = {}
        for shape, cluster in SHAPES.items():
            shaped = ExperimentContext(
                scale=ctx.scale, cluster=cluster, warm_start=ctx.warm_start
            )
            for variant in (CSM_POLL, TMK_MC_POLL):
                seq = shaped.sequential("sor")
                run = shaped.run("sor", variant, 16)
                out[(shape, variant.name)] = run.speedup_over(seq.exec_time)
        return out

    speedups = run_once(benchmark, measure)
    print()
    print(f"{'shape':>6} {'csm_poll':>10} {'tmk_mc_poll':>12}")
    for shape in SHAPES:
        print(
            f"{shape:>6} {speedups[(shape, 'csm_poll')]:>10.2f}"
            f" {speedups[(shape, 'tmk_mc_poll')]:>12.2f}"
        )
    benchmark.extra_info.update(
        {f"{s}_{v}": x for (s, v), x in speedups.items()}
    )
    csm_gain = speedups[("4x4", "csm_poll")] / speedups[("16x1", "csm_poll")]
    tmk_gain = (
        speedups[("4x4", "tmk_mc_poll")] / speedups[("16x1", "tmk_mc_poll")]
    )
    print(f"fat-node gain: csm {csm_gain:.2f}x, tmk {tmk_gain:.2f}x")
    # Clustering helps the system that exploits intra-node coherence.
    assert csm_gain > 1.0
    assert csm_gain >= tmk_gain * 0.95
