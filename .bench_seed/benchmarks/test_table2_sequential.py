"""Regenerate Table 2: data-set sizes and sequential execution times.

Absolute seconds cannot match the paper (the problems are scaled down;
see EXPERIMENTS.md), so the assertions check that every application runs,
reports a positive footprint, and that the *ordering* of the heaviest
applications is sensible.
"""

from repro.harness import table2

from conftest import run_once


def test_table2(benchmark, ctx):
    rows = run_once(benchmark, lambda: table2.generate(ctx))
    print()
    print(table2.render(rows))
    for row in rows:
        benchmark.extra_info[row.app] = {
            "seq_seconds": row.sequential_seconds,
            "shared_mbytes": row.shared_mbytes,
        }
    assert len(rows) == 8
    for row in rows:
        assert row.sequential_seconds > 0.05, (
            f"{row.app} is too small to measure meaningfully"
        )
        assert row.shared_mbytes > 0
