"""Network-sensitivity sweeps: the paper's "three principal factors".

"First, the current Memory Channel has relatively modest cross-sectional
bandwidth, which limits the performance of write-through" (Section 1).
Cashmere's write-through and whole-page transfers make it the
bandwidth-hungry system, so its speedup must respond more strongly to a
bandwidth sweep than TreadMarks'.
"""

from repro.harness import sweep

from conftest import run_once


def test_bandwidth_sweep_favours_cashmere(benchmark, ctx):
    points = run_once(
        benchmark,
        lambda: sweep.sweep_bandwidth(
            ctx, app="sor", nprocs=16, multipliers=(0.5, 1.0, 4.0)
        ),
    )
    print()
    print(sweep.render(points))
    improvements = sweep.gains(points)
    benchmark.extra_info.update(improvements)
    # Everyone benefits from more bandwidth...
    for name, gain in improvements.items():
        assert gain > 1.0, f"{name} did not benefit from bandwidth"
    # ...but the write-through system benefits more.
    assert improvements["csm_poll"] >= improvements["tmk_mc_poll"]


def test_latency_sweep_hurts_fine_grain_more(benchmark, ctx):
    points = run_once(
        benchmark,
        lambda: sweep.sweep_latency(
            ctx, app="sor", nprocs=16, latencies=(2.6, 5.2, 20.8)
        ),
    )
    print()
    print(sweep.render(points))
    spreads = sweep.gains(points)
    benchmark.extra_info.update(spreads)
    # Latency moves both systems (all traffic crosses the same wire).
    for name, spread in spreads.items():
        assert spread >= 1.0
