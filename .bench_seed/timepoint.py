"""Time one 8p small point: python timepoint.py APP VARIANT [REPS]."""
import json
import sys
import time

from repro.apps import registry
from repro.config import ClusterConfig, CostModel
from repro.harness.parallel import PointSpec, execute_point


def main():
    app, variant = sys.argv[1], sys.argv[2]
    reps = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    module = registry.load(app)
    spec = PointSpec(
        app=app,
        variant_name=variant,
        nprocs=8,
        params=module.default_params("small"),
        cluster=ClusterConfig(),
        costs=CostModel(),
        warm_start=True,
    )
    best = None
    exec_time = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = execute_point(spec)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
        exec_time = result.exec_time
    print(json.dumps({"seconds": best, "exec_time": exec_time}))


if __name__ == "__main__":
    main()
