import json, subprocess, sys

POINTS = [(a, v) for a in ("lu", "gauss", "sor")
          for v in ("csm_poll", "tmk_mc_poll", "hlrc_poll")]

def run(tree, app, variant):
    out = subprocess.run(
        [sys.executable, ".bench_seed/timepoint.py", app, variant, "3"],
        env={"PYTHONPATH": tree, "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, check=True).stdout
    return json.loads(out)

seed, cur, exec_seed, exec_cur = {}, {}, {}, {}
for cycle in range(4):
    for app, variant in POINTS:
        key = f"{app}/{variant}/8p"
        s = run(".bench_seed/src", app, variant)
        c = run("src", app, variant)
        seed[key] = min(seed.get(key, 1e9), s["seconds"])
        cur[key] = min(cur.get(key, 1e9), c["seconds"])
        exec_seed[key], exec_cur[key] = s["exec_time"], c["exec_time"]
        print(f"cycle{cycle} {key}: seed={s['seconds']:.3f} cur={c['seconds']:.3f}", flush=True)

assert exec_seed == exec_cur, (exec_seed, exec_cur)
ratios = [seed[k] / cur[k] for k in seed]
import math
geo = math.exp(sum(map(math.log, ratios)) / len(ratios))
print("per-point best:", json.dumps({k: round(seed[k]/cur[k], 3) for k in seed}, indent=1))
print("geomean speedup:", round(geo, 3))
json.dump({"points": seed, "commit": "202e79c",
           "methodology": "execute_point(PointSpec) 8p small, plain CostModel, warm_start; interleaved seed/current, best of 3 reps x 4 cycles, fresh process per invocation"},
          open(".bench_seed/baseline.json", "w"), indent=1)
