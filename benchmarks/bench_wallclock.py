"""Wall-clock benchmarks for the simulator's hot paths.

Two modes:

**Default (PR2)** — times one fixed Figure-5 slice three ways:

1. **serial** — ``jobs=1``, cache disabled (the pre-PR baseline path);
2. **parallel** — ``jobs=N`` process-pool fan-out, cache disabled;
3. **warm cache** — ``jobs=1`` against a cache populated by pass 1.

All three must produce identical speedup curves (asserted here; the
same guarantee is locked in by ``tests/test_parallel_harness.py``), so
any wall-clock difference is pure harness overhead.  Results land in
``BENCH_PR2.json`` together with host provenance — process-pool gains
scale with physical cores, so absolute numbers are only comparable on
the recorded host.

**--pr3** — times the shared-access fast path (vectorized permission
bitmaps + span batching) against the legacy per-page generator loop:

1. **access path** — replays each application's characteristic access
   pattern (LU's 8 KB block rows, Gauss's pivot-row reads and partial
   row-segment writes, SOR's 34-page band reads and 32-page band
   writes) against a prewarmed live protocol, with the fast path on
   and off.  Every byte read is asserted identical across modes *and*
   against the plain-numpy serial reference.
2. **full runs** — end-to-end 8-processor simulations per app and
   protocol, on vs off, asserting bit-identical simulated results
   (``exec_time``, ``network_bytes``, every counter).

Results land in ``BENCH_PR3.json``.  The access-path replays are the
headline (that is the code the fast path targets); the full runs give
honest end-to-end context — most of a full simulation is engine,
messaging, and cold faults, which the fast path deliberately leaves
untouched.

**--pr4** — times the event-engine/messaging overhaul (calendar-queue
scheduler, pooled events, slotted messages, generator-frame
flattening):

1. **engine microbench** — raw resumes/sec on a synthetic schedule,
   calendar queue vs binary heap, plus end-to-end messages/sec from
   gauss 8p runs;
2. **full runs** — lu/gauss/sor x csm/tmk/hlrc at 8 processors under
   the overhauled engine and under the ``--no-calqueue`` escape hatch,
   asserting bit-identical simulated results; with ``--baseline-json``
   (seed-tree timings from the same host) it also records speedup
   against the pre-PR4 seed.

Results land in ``BENCH_PR4.json``.

**--pr5** — times the bulk-region API and the vectorized kernel layer:

1. **region microbench** — region gathers/scatters (contiguous band,
   interior block, scattered row gather) against the per-row/per-range
   loops the apps used to issue, on a prewarmed live protocol, with
   every byte asserted identical between the two shapes and against
   the serial reference;
2. **full runs** — lu/gauss/sor x csm/tmk at 8 processors with the
   kernel layer on and off (``--no-kernels``), asserting bit-identical
   simulated results; with ``--baseline-json`` (timings of the
   ``.bench_seed`` reference tree from the same host) it also records
   speedup against the seed.

Results land in ``BENCH_PR5.json``.  The PR3 full-run section fans its
points across the ``--jobs`` process pool (one mode of one point per
worker); pass ``--jobs 1`` for minimum-noise serial timings.

**--pr7** — times the sharded event scheduler (per-node cascade ring,
recycled bucket free list, batched bare-delay resume) against the
``--no-shard`` flat calendar queue — which *is* the PR4/PR5-era
engine, so the A/B doubles as the regression check against BENCH_PR5:

1. **synchronization storm** — a queue-dominated microbench (P
   generator workers alternating bare delays with an event barrier)
   at 8/64/256 processors, reporting wall-clock **ns per delivered
   simulated event** (``Engine.events_fired`` is the denominator),
   interleaved A/B, asserting identical event counts and final sim
   time across modes;
2. **full runs** — sor/gauss x csm/tmk at 8 processors plus a
   64-processor weak-scaled sor point, shard vs --no-shard, asserting
   bit-identical simulated results.

Results land in ``BENCH_PR7.json``.

**--pr8** — load-tests the experiment-serving layer (asyncio front
end with request coalescing, cold-point batching, and the sharded
result cache — see docs/SERVING.md) against the naive pre-serving
path:

1. **served load** — boots a real HTTP server on an ephemeral port
   and fires hundreds of concurrent synthetic clients over a zipf-ish
   distribution of a mixed hot/cold tiny-scale point set, reporting
   throughput, p50/p99 latency, coalesce rate, and cache-hit rate;
   every distinct point's served bytes are diffed against a direct
   ``api.run_point`` call (identical or the benchmark fails);
2. **naive baseline** — the same request issued as the pre-PR8 world
   would: one fresh subprocess per request (interpreter + NumPy
   import + uncached simulation), giving the ``speedup_over_naive``
   figure (the acceptance gate is >= 5x; measured runs land around
   two orders of magnitude).

Results land in ``BENCH_PR8.json``.

**--pr9** — load-tests serving v2 (HTTP/1.1 keep-alive sessions,
bounded result cache, negative-result cache, hot payload tier — see
docs/SERVING.md):

1. **connection comparison** — the identical 500-client zipf schedule
   runs twice, over per-request connections and over keep-alive
   sessions (one persistent connection per simulated client); both
   fleets byte-verify against direct ``api.run_point``;
2. **acceptance** — keep-alive throughput must be >= 2x the
   per-request baseline BENCH_PR8.json recorded, the salted invalid
   requests must all be rejected (negative-cache hits > 0, none
   served), and the entry-bounded cache must evict (> 0) yet never
   exceed its bound.

Results land in ``BENCH_PR9.json``.

**--pr10** — A/Bs the sharing-policy layer (docs/POLICIES.md) on the
false-sharing stressor ``irreg`` at 8 processors over ``rdma``:

1. **policy ladder** — the default triple ``(page, none,
   first-touch)`` against ``block256``, ``block256``+``seq``, and
   ``block1k`` on the invalidate-based protocols (``hlrc_poll``,
   ``tmk_mc_poll``), comparing *simulated* execution time (the layer's
   product is simulated-time savings, so the gate is deterministic —
   no wall-clock noise);
2. **acceptance** — fine granularity + prefetch
   (``block256``+``seq``) must be >= 1.2x the default triple on at
   least one protocol, and every policy row's simulated values must be
   bit-identical to its default-triple row.

Results land in ``BENCH_PR10.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        [--jobs N] [--scale tiny] [--out BENCH_PR2.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --pr3 \
        [--reps N] [--jobs N] [--out BENCH_PR3.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --pr4 \
        [--reps N] [--baseline-json seed.json] [--out BENCH_PR4.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --pr5 \
        [--reps N] [--baseline-json seed.json] [--out BENCH_PR5.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --pr7 \
        [--reps N] [--out BENCH_PR7.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --pr8 \
        [--clients N] [--jobs N] [--out BENCH_PR8.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --pr9 \
        [--clients N] [--serve-requests N] [--cache-max-entries N] \
        [--bad-every N] [--out BENCH_PR9.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --pr10 \
        [--scale small] [--out BENCH_PR10.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import api
from repro import options as options_mod
from repro.apps import registry
from repro.config import (
    CSM_POLL,
    HLRC_POLL,
    TMK_MC_POLL,
    ClusterConfig,
    CostModel,
    RunConfig,
)
from repro.core import fastpath
from repro.core.runtime.program import Program, run_program
from repro.core.runtime.shared import SharedArray
from repro.harness import figure5
from repro.harness.cache import ResultCache
from repro.harness.parallel import PointSpec, run_points
from repro.harness.runner import ExperimentContext
from repro.options import SimOptions
from repro.sim import Engine

APPS = ("sor", "water", "gauss")
VARIANTS = (CSM_POLL, TMK_MC_POLL)
COUNTS = (1, 4, 8, 16)


def _curves_signature(curves):
    return [(c.app, c.variant, sorted(c.points.items())) for c in curves]


def _generate(scale: str, jobs: int, cache) -> tuple:
    ctx = ExperimentContext(scale=scale, jobs=jobs, cache=cache)
    started = time.perf_counter()
    curves = figure5.generate(
        ctx, apps=APPS, variants=VARIANTS, counts=COUNTS
    )
    elapsed = time.perf_counter() - started
    return _curves_signature(curves), elapsed, ctx


# ---------------------------------------------------------------------------
# PR3: access-path fast-path benchmark
# ---------------------------------------------------------------------------


def _drive(gen):
    """Exhaust an access generator outside the engine.

    Hot accesses never yield (no simulated events), so plain ``next``
    drives them to completion; the return value rides StopIteration.
    Hot-path writes skip the generator frame entirely and return an
    empty tuple — nothing to drive.
    """
    if isinstance(gen, tuple):
        return None
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def _captured_protocol(shape):
    """Run a 1-processor program that maps every page READ_WRITE and
    hands back the live env + array for direct access replay."""
    captured = {}
    rows, cols = shape

    def setup(space, params):
        arr = SharedArray.alloc(space, "bench", np.float64, shape)
        arr.initialize(np.zeros(shape))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        ref = np.arange(rows * cols, dtype=np.float64).reshape(shape)
        # One full write pass faults every page up to READ_WRITE, so
        # the replayed accesses below are pure hit-path.
        for row in range(rows):
            yield from arr.write_rows(env, row, ref[row : row + 1])
        captured["env"] = env
        captured["arr"] = arr
        captured["ref"] = ref

    run_program(
        Program("bench-capture", setup, worker),
        RunConfig(variant=TMK_MC_POLL, nprocs=1),
        {},
    )
    return captured


def _lu_replay(env, arr, ref):
    """LU's granularity: 8 KB block rows (one page per 32x32 block).

    Returns ``(got, expected)`` pairs for every read; writes put the
    same values back so the pattern is idempotent across repetitions.
    """
    pairs = []
    for row in range(0, 64, 2):
        block = _drive(arr.read_rows(env, row, row + 1))
        pairs.append((block, ref[row : row + 1]))
        _drive(arr.write_rows(env, row, block))
    return pairs


def _gauss_replay(env, arr, ref):
    """Gauss's granularity: one pivot-row read per elimination round,
    then partial row-segment writes of the live columns."""
    width = arr.shape[1]
    k = 64
    pairs = [(_drive(arr.read_rows(env, k, k + 1)), ref[k : k + 1])]
    seg = ref[0, k : k + 256]
    for row in range(k + 1, k + 33):
        _drive(arr.write_range(env, row * width + k, seg))
        pairs.append(
            (_drive(arr.read_range(env, row * width + k, 256)), seg)
        )
    return pairs


def _sor_replay(env, arr, ref):
    """SOR's granularity: a 34-row band read (halo included) and a
    32-row band write, each row one page."""
    band = _drive(arr.read_rows(env, 0, 34))
    _drive(arr.write_rows(env, 1, band[1:33]))
    return [(band, ref[0:34])]


_REPLAYS = {
    "lu": (_lu_replay, "32 block-row reads + writes, 8 KB / 1 page each"),
    "gauss": (
        _gauss_replay,
        "pivot-row read + 32 x (2 KB row-segment write + read-back)",
    ),
    "sor": (
        _sor_replay,
        "34-page / 272 KB band read + 32-page / 256 KB band write",
    ),
}


def _time_replay(replay, env, arr, ref, reps: int) -> float:
    """Best-of-``reps`` seconds for one full replay pattern."""
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        replay(env, arr, ref)
        best = min(best, time.perf_counter() - started)
    return best


def _bench_access_path(reps: int) -> dict:
    results = {}
    for app, (replay, pattern) in _REPLAYS.items():
        cap = _captured_protocol((256, 1024))
        env, arr, ref = cap["env"], cap["arr"], cap["ref"]
        outputs = {}
        timings = {}
        for label, enabled in (("on", True), ("off", False)):
            fastpath.set_enabled(enabled)
            try:
                outputs[label] = replay(env, arr, ref)
                timings[label] = _time_replay(replay, env, arr, ref, reps)
            finally:
                fastpath.refresh_from_env()
        # Identity: both modes return the same bytes, and they match
        # the plain-numpy serial reference the worker wrote.
        assert len(outputs["on"]) == len(outputs["off"])
        for (got_on, expected), (got_off, _) in zip(
            outputs["on"], outputs["off"]
        ):
            assert np.array_equal(got_on, got_off), f"{app}: on != off"
            assert np.array_equal(
                got_on.reshape(expected.shape), expected
            ), f"{app}: fast-path read != serial reference"
        on_us = timings["on"] * 1e6
        off_us = timings["off"] * 1e6
        results[app] = {
            "pattern": pattern,
            "fastpath_us": round(on_us, 2),
            "legacy_us": round(off_us, 2),
            "speedup": round(off_us / on_us, 2),
        }
        print(
            f"  access path {app:6s}: fastpath {on_us:9.2f}us  "
            f"legacy {off_us:9.2f}us  ({off_us / on_us:4.2f}x)  [{pattern}]",
            file=sys.stderr,
        )
    return results


def _run_point(app: str, variant, nprocs: int, options=None):
    started = time.perf_counter()
    result = api.run_point(
        app, variant, nprocs, scale="small", options=options
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def _bench_full_runs(jobs: int = 1) -> dict:
    """8p full runs, fast path on vs off, fanned across the ``--jobs``
    process pool (each mode of each point is one pooled worker).

    Pool workers pick the mode up from ``PointSpec.options`` — the
    toggles are wall-clock-only, so the identity asserts below hold
    whatever the fan-out.  Pooled timings share cores; use ``--jobs 1``
    when the wall-clock numbers themselves are the point.
    """
    from dataclasses import replace

    defaults = SimOptions.from_env(warn=False)
    points = [
        (app, variant)
        for app in ("lu", "gauss", "sor")
        for variant in (TMK_MC_POLL, CSM_POLL)
    ]
    specs = []
    for app, variant in points:
        params = registry.load(app).default_params("small")
        for enabled in (True, False):
            specs.append(
                PointSpec(
                    app=app,
                    variant_name=variant.name,
                    nprocs=8,
                    params=params,
                    cluster=ClusterConfig(),
                    costs=CostModel(),
                    options=replace(defaults, fastpath=enabled),
                )
            )
    outcomes = run_points(specs, jobs=jobs, timed=True)
    defaults.apply()  # jobs=1 runs in-process: undo the last toggle
    results = {}
    for (app, variant), (res_on, s_on), (res_off, s_off) in zip(
        points, outcomes[0::2], outcomes[1::2]
    ):
        key = f"{app}/{variant.name}/8p"
        assert res_on.exec_time == res_off.exec_time, key
        assert res_on.network_bytes == res_off.network_bytes, key
        assert res_on.stats.as_dict() == res_off.stats.as_dict(), key
        results[key] = {
            "fastpath_s": round(s_on, 3),
            "legacy_s": round(s_off, 3),
            "speedup": round(s_off / s_on, 2),
            "identical_simulated_results": True,
        }
        print(
            f"  full run {key:24s}: fastpath {s_on:7.3f}s  "
            f"legacy {s_off:7.3f}s  ({s_off / s_on:4.2f}x)",
            file=sys.stderr,
        )
    return results


def pr3_main(args) -> int:
    print(
        "benchmarking the shared-access fast path (on vs "
        "REPRO_DSM_NO_FASTPATH)",
        file=sys.stderr,
    )
    access = _bench_access_path(args.reps)
    full = _bench_full_runs(args.jobs)
    report = {
        "benchmark": (
            "shared-access fast path: vectorized permission bitmaps + "
            "span-level fault batching vs legacy per-page generator loop"
        ),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "access_path": access,
        "full_runs_8p_small": full,
        "identical_results": True,
        "notes": (
            "access_path replays each app's real access granularity "
            "against a prewarmed protocol — the code the fast path "
            "targets; every byte read is asserted identical across "
            "modes and against the serial numpy reference.  full_runs "
            "are end-to-end context: engine/messaging/cold-fault time "
            "dominates there and is deliberately untouched, so modest "
            "ratios are expected.  Simulated results (exec_time, "
            "network_bytes, all counters) are asserted bit-identical "
            "in both modes."
        ),
    }
    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# PR4: event-engine & messaging hot-path benchmark
# ---------------------------------------------------------------------------

PR4_POINTS = tuple(
    (app, variant)
    for app in ("lu", "gauss", "sor")
    for variant in (CSM_POLL, TMK_MC_POLL, HLRC_POLL)
)


def _point_key(app, variant) -> str:
    return f"{app}/{variant.name}/8p"


def _events_per_sec(calqueue: bool, n_events: int, reps: int) -> float:
    """Raw engine throughput: resumes/sec over a synthetic schedule.

    Eight processes sleep in a fixed pattern mixing the two hot sleep
    styles (bare delays and pooled ``Timeout`` events) with heavy
    same-timestamp collisions — the shape of a real run's queue load.
    """
    from dataclasses import replace

    nprocs = 8
    per_proc = n_events // nprocs
    best = float("inf")
    for _ in range(reps):
        engine = Engine(replace(options_mod.current(), calqueue=calqueue))

        def worker(pid):
            for i in range(per_proc):
                delay = float(1 + (pid + i) % 3)
                if i % 2:
                    yield engine.timeout(delay)
                else:
                    yield delay

        for pid in range(nprocs):
            engine.process(worker(pid), name=f"p{pid}")
        started = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - started)
    return nprocs * per_proc / best


def _bench_engine_micro(reps: int) -> dict:
    n_events = 200_000
    rates = {}
    for label, calqueue in (("calqueue", True), ("heap", False)):
        rates[label] = _events_per_sec(calqueue, n_events, reps)
        print(
            f"  engine micro: {rates[label]:12,.0f} events/s ({label})",
            file=sys.stderr,
        )
    messages = {}
    for variant in (CSM_POLL, TMK_MC_POLL):
        best, result = float("inf"), None
        for _ in range(reps):
            result, elapsed = _run_point("gauss", variant, 8)
            best = min(best, elapsed)
        count = result.stats.aggregate_counters()["messages"]
        messages[_point_key("gauss", variant)] = count / best
        print(
            f"  messaging   : {count / best:12,.0f} messages/s "
            f"({variant.name}, {count:,} msgs in {best:.3f}s best)",
            file=sys.stderr,
        )
    return {
        "events_per_sec": {k: round(v) for k, v in rates.items()},
        "calqueue_vs_heap": round(rates["calqueue"] / rates["heap"], 3),
        "messages_per_sec": {k: round(v) for k, v in messages.items()},
        "n_events": n_events,
    }


def _bench_pr4_full_runs(reps: int, baseline: dict) -> tuple:
    """8p full runs: wall clock under the overhauled engine, the heap
    escape hatch as A/B identity check, and (when seed timings are
    supplied) speedup against the pre-PR4 tree."""
    defaults = SimOptions.from_env(warn=False)
    from dataclasses import replace

    heap = replace(defaults, calqueue=False)
    results = {}
    speedups = []
    for app, variant in PR4_POINTS:
        key = _point_key(app, variant)
        new_s, heap_s = float("inf"), float("inf")
        res_new = res_heap = None
        for _ in range(reps):
            res_new, elapsed = _run_point(app, variant, 8, options=defaults)
            new_s = min(new_s, elapsed)
        for _ in range(reps):
            res_heap, elapsed = _run_point(app, variant, 8, options=heap)
            heap_s = min(heap_s, elapsed)
        defaults.apply()
        assert res_new.exec_time == res_heap.exec_time, key
        assert res_new.network_bytes == res_heap.network_bytes, key
        assert res_new.stats.as_dict() == res_heap.stats.as_dict(), key
        entry = {
            "seconds": round(new_s, 3),
            "heap_seconds": round(heap_s, 3),
            "identical_simulated_results": True,
        }
        line = (
            f"  full run {key:24s}: {new_s:7.3f}s  heap {heap_s:7.3f}s"
        )
        base_s = baseline.get(key)
        if base_s is not None:
            entry["seed_seconds"] = base_s
            entry["speedup_vs_seed"] = round(base_s / new_s, 2)
            speedups.append(base_s / new_s)
            line += f"  seed {base_s:7.3f}s ({base_s / new_s:4.2f}x)"
        results[key] = entry
        print(line, file=sys.stderr)
    geomean = None
    if speedups:
        geomean = round(float(np.exp(np.mean(np.log(speedups)))), 3)
        print(f"  geomean speedup vs seed: {geomean:.3f}x", file=sys.stderr)
    return results, geomean


def pr4_main(args) -> int:
    print(
        "benchmarking the event-engine/messaging overhaul "
        "(calendar queue + pooling + frame flattening)",
        file=sys.stderr,
    )
    baseline = {}
    baseline_meta = {}
    if args.baseline_json:
        data = json.loads(Path(args.baseline_json).read_text())
        baseline = data.get("points", data)
        baseline_meta = {
            k: v for k, v in data.items() if k != "points"
        }
    micro = _bench_engine_micro(args.reps)
    full, geomean = _bench_pr4_full_runs(args.reps, baseline)
    report = {
        "benchmark": (
            "event-engine & messaging hot path: calendar-queue "
            "scheduler, event pooling, slotted messages, and "
            "generator-frame flattening vs the PR3 seed"
        ),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "engine_microbench": micro,
        "full_runs_8p_small": full,
        "identical_results": True,
        "notes": (
            "full_runs compare the overhauled engine against its own "
            "binary-heap escape hatch (--no-calqueue) and assert "
            "bit-identical simulated results; seed_seconds/speedup "
            "fields appear when --baseline-json supplies wall-clock "
            "timings of the pre-PR4 tree measured on the same host.  "
            "The queue swap alone is a modest share of the win — most "
            "comes from frame flattening and pooling, which have no "
            "escape hatch — so heap_seconds understates the PR's "
            "total effect."
        ),
    }
    if geomean is not None:
        report["speedup_vs_seed_geomean"] = geomean
    if baseline_meta:
        report["baseline"] = baseline_meta
    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# PR5: bulk-region API + vectorized kernel layer benchmark
# ---------------------------------------------------------------------------

PR5_POINTS = tuple(
    (app, variant)
    for app in ("lu", "gauss", "sor")
    for variant in (TMK_MC_POLL, CSM_POLL)
)


def _bench_region_micro(reps: int) -> dict:
    """Region-shaped access vs the per-row/per-range loops the apps
    used to issue, on a prewarmed live protocol (pure hit path)."""
    cap = _captured_protocol((256, 1024))
    env, arr, ref = cap["env"], cap["arr"], cap["ref"]
    gather_rows = list(range(1, 200, 6))
    band = arr.region_rows(64, 96)
    block = arr.region_block(32, 64, 128, 384)
    gather = arr.region_row_gather(gather_rows, 64, 320)
    w_payload = ref[32:64, 128:384]

    def loop_band():
        return np.concatenate(
            [_drive(arr.read_rows(env, r, r + 1)) for r in range(64, 96)]
        )

    def loop_block():
        return np.stack(
            [
                _drive(arr.read_range(env, r * 1024 + 128, 256))
                for r in range(32, 64)
            ]
        )

    def loop_gather():
        return np.stack(
            [
                _drive(arr.read_range(env, r * 1024 + 64, 256))
                for r in gather_rows
            ]
        )

    def region_scatter():
        _drive(arr.write_region(env, block, w_payload))

    def loop_scatter():
        for i, r in enumerate(range(32, 64)):
            _drive(arr.write_range(env, r * 1024 + 128, w_payload[i]))

    patterns = {
        "band_rows": (
            "32-row / 256 KB contiguous band read",
            lambda: _drive(arr.read_region(env, band)),
            loop_band,
            ref[64:96],
        ),
        "block": (
            "32x256 interior block read (one 2 KB segment per row)",
            lambda: _drive(arr.read_region(env, block)),
            loop_block,
            ref[32:64, 128:384],
        ),
        "row_gather": (
            "34 scattered rows x 256 cols read",
            lambda: _drive(arr.read_region(env, gather)),
            loop_gather,
            ref[gather_rows, 64:320],
        ),
        "block_scatter": (
            "32x256 interior block write",
            region_scatter,
            loop_scatter,
            None,
        ),
    }
    results = {}
    for name, (pattern, region_fn, loop_fn, expected) in patterns.items():
        if expected is not None:
            got_region = np.asarray(region_fn()).reshape(expected.shape)
            got_loop = np.asarray(loop_fn()).reshape(expected.shape)
            assert np.array_equal(got_region, got_loop), name
            assert np.array_equal(got_region, expected), name
        else:
            # Scatter identity: both shapes land the same bytes.
            region_fn()
            after_region = _drive(arr.read_region(env, block))
            loop_fn()
            after_loop = _drive(arr.read_region(env, block))
            assert np.array_equal(after_region, after_loop), name
            assert np.array_equal(after_loop, w_payload), name
        region_s = loop_s = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            region_fn()
            region_s = min(region_s, time.perf_counter() - started)
            started = time.perf_counter()
            loop_fn()
            loop_s = min(loop_s, time.perf_counter() - started)
        results[name] = {
            "pattern": pattern,
            "region_us": round(region_s * 1e6, 2),
            "loop_us": round(loop_s * 1e6, 2),
            "speedup": round(loop_s / region_s, 2),
        }
        print(
            f"  region micro {name:13s}: region {region_s * 1e6:9.2f}us  "
            f"loop {loop_s * 1e6:9.2f}us  ({loop_s / region_s:5.2f}x)  "
            f"[{pattern}]",
            file=sys.stderr,
        )
    return results


def _bench_pr5_full_runs(reps: int, baseline: dict) -> tuple:
    """8p full runs with the kernel layer on vs off (the retained
    scalar reference loops), and — when seed-tree timings are supplied
    — speedup against the ``.bench_seed`` reference tree."""
    from dataclasses import replace

    defaults = SimOptions.from_env(warn=False)
    scalar = replace(defaults, kernels=False)
    results = {}
    speedups = []
    for app, variant in PR5_POINTS:
        key = _point_key(app, variant)
        kern_s = scal_s = float("inf")
        res_kern = res_scal = None
        for _ in range(reps):
            res_kern, elapsed = _run_point(app, variant, 8, options=defaults)
            kern_s = min(kern_s, elapsed)
        for _ in range(reps):
            res_scal, elapsed = _run_point(app, variant, 8, options=scalar)
            scal_s = min(scal_s, elapsed)
        defaults.apply()
        assert res_kern.exec_time == res_scal.exec_time, key
        assert res_kern.network_bytes == res_scal.network_bytes, key
        assert res_kern.stats.as_dict() == res_scal.stats.as_dict(), key
        entry = {
            "seconds": round(kern_s, 3),
            "scalar_seconds": round(scal_s, 3),
            "kernel_speedup": round(scal_s / kern_s, 2),
            "identical_simulated_results": True,
        }
        line = (
            f"  full run {key:24s}: {kern_s:7.3f}s  "
            f"scalar {scal_s:7.3f}s"
        )
        base_s = baseline.get(key)
        if base_s is not None:
            entry["seed_seconds"] = round(base_s, 3)
            entry["speedup_vs_seed"] = round(base_s / kern_s, 2)
            speedups.append(base_s / kern_s)
            line += f"  seed {base_s:7.3f}s ({base_s / kern_s:4.2f}x)"
        results[key] = entry
        print(line, file=sys.stderr)
    geomean = None
    if speedups:
        geomean = round(float(np.exp(np.mean(np.log(speedups)))), 3)
        print(f"  geomean speedup vs seed: {geomean:.3f}x", file=sys.stderr)
    return results, geomean


def pr5_main(args) -> int:
    print(
        "benchmarking the bulk-region API + vectorized kernel layer "
        "(kernels on vs --no-kernels)",
        file=sys.stderr,
    )
    baseline = {}
    baseline_meta = {}
    if args.baseline_json:
        data = json.loads(Path(args.baseline_json).read_text())
        baseline = data.get("points", data)
        baseline_meta = {k: v for k, v in data.items() if k != "points"}
    micro = _bench_region_micro(args.reps)
    full, geomean = _bench_pr5_full_runs(args.reps, baseline)
    report = {
        "benchmark": (
            "bulk SharedArray region API + vectorized app kernels: "
            "one permission probe and one gather/scatter per region, "
            "numpy inner loops with identical flop charging, vs the "
            "retained scalar per-row/per-element paths"
        ),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "region_microbench": micro,
        "full_runs_8p_small": full,
        "identical_results": True,
        "notes": (
            "region_microbench replays region-shaped accesses against "
            "a prewarmed protocol — the hit path the region API "
            "collapses to a single probe + gather; every byte is "
            "asserted identical across shapes and against the serial "
            "reference.  full_runs compare the kernel layer against "
            "its in-tree scalar escape hatch (--no-kernels) and assert "
            "bit-identical simulated results; seed_seconds/"
            "speedup_vs_seed fields appear when --baseline-json "
            "supplies wall-clock timings of the .bench_seed reference "
            "tree measured on the same host.  Kernel wins concentrate "
            "where app math leads the flat profile (gauss above all); "
            "lu/sor full runs are dominated by protocol-event "
            "simulation, which the app layer must replay exactly, so "
            "their headroom is structurally smaller."
        ),
    }
    if geomean is not None:
        report["speedup_vs_seed_geomean"] = geomean
    if baseline_meta:
        report["baseline"] = baseline_meta
    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# PR7: sharded event scheduler benchmark
# ---------------------------------------------------------------------------

PR7_STORM_COUNTS = (8, 64, 256)

PR7_POINTS = tuple(
    (app, variant)
    for app in ("sor", "gauss")
    for variant in (CSM_POLL, TMK_MC_POLL)
)


def _storm_run(nprocs: int, shard: bool):
    """One synchronization storm; returns (seconds, events, final_now).

    P workers alternate two bare delays (the two-hop batched resume
    path) with an event barrier whose release wakes all P at the same
    timestamp (the cascade-ring path) — the queue load shape of a real
    large-P run with the protocol layers stripped away.  Total work is
    fixed (~P x iters constant), so counts are comparable.
    """
    from dataclasses import replace

    iters = 40_000 // nprocs * 4
    eng = Engine(
        replace(options_mod.current(), calqueue=True, shard=shard)
    )
    arrived = [0] * iters
    releases = [eng.event() for _ in range(iters)]

    def worker(pid):
        for i in range(iters):
            yield 1.0
            yield 0.5
            arrived[i] += 1
            if arrived[i] == nprocs:
                eng.succeed_at(eng.now + 0.5, releases[i])
            yield releases[i]

    n_nodes = -(-nprocs // 4)
    for pid in range(nprocs):
        eng.process(worker(pid), name=f"p{pid}", shard=pid % n_nodes)
    # CPU time, not wall time: the storm is single-threaded pure-Python
    # compute, and process_time excludes other-tenant interference that
    # otherwise swamps a 15% effect on a shared host.
    started = time.process_time()
    eng.run()
    return time.process_time() - started, eng.events_fired, eng.now


def _storm_subprocess(nprocs: int, shard: bool, reps: int):
    """Best-of-``reps`` storm timing in a fresh interpreter.

    Allocator and free-list state accumulated by earlier in-process
    runs systematically favours whichever mode runs later; a clean
    process per (count, mode) sample removes that coupling.  Returns
    ``(best_seconds, events, final_now)``.
    """
    import subprocess

    out = subprocess.run(
        [
            sys.executable,
            __file__,
            "--storm-one",
            f"{nprocs},{int(shard)},{reps}",
        ],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=str(Path(__file__).resolve().parent.parent),
    )
    seconds, events, now = out.stdout.split()
    return float(seconds), int(events), float(now)


def storm_one_main(spec: str) -> int:
    """Hidden worker mode backing :func:`_storm_subprocess`."""
    import gc

    nprocs, shard, reps = (int(v) for v in spec.split(","))
    best = float("inf")
    meta = None
    for _ in range(reps):
        gc.collect()
        seconds, events, now = _storm_run(nprocs, bool(shard))
        best = min(best, seconds)
        assert meta in (None, (events, now)), "storm drifted across reps"
        meta = (events, now)
    print(best, meta[0], meta[1])
    return 0


def _bench_storm(reps: int) -> dict:
    """ns/event at each processor count, shard vs --no-shard.

    Each (count, mode) is sampled in three fresh subprocesses of
    best-of-``reps//3`` runs each; the minimum over subprocesses is
    reported.
    """
    results = {}
    per_proc = max(3, reps // 3)
    for nprocs in PR7_STORM_COUNTS:
        best = {"shard": float("inf"), "noshard": float("inf")}
        meta = {}
        for _ in range(3):
            for label, shard in (("shard", True), ("noshard", False)):
                seconds, events, now = _storm_subprocess(
                    nprocs, shard, per_proc
                )
                best[label] = min(best[label], seconds)
                prev = meta.setdefault(label, (events, now))
                assert prev == (events, now), f"{nprocs}p {label} drifted"
        events_s, now_s = meta["shard"]
        events_n, now_n = meta["noshard"]
        assert events_s == events_n, f"{nprocs}p: event counts diverge"
        assert now_s == now_n, f"{nprocs}p: final sim times diverge"
        shard_ns = best["shard"] / events_s * 1e9
        noshard_ns = best["noshard"] / events_n * 1e9
        results[f"{nprocs}p"] = {
            "events": events_s,
            "shard_ns_per_event": round(shard_ns, 1),
            "noshard_ns_per_event": round(noshard_ns, 1),
            "speedup": round(noshard_ns / shard_ns, 2),
        }
        print(
            f"  storm {nprocs:4d}p: shard {shard_ns:7.1f} ns/event  "
            f"noshard {noshard_ns:7.1f} ns/event  "
            f"({noshard_ns / shard_ns:4.2f}x, {events_s:,} events)",
            file=sys.stderr,
        )
    return results


def _bench_pr7_full_runs(reps: int) -> dict:
    """Full runs shard vs --no-shard: sor/gauss x csm/tmk at 8p plus a
    64-processor weak-scaled sor point, asserting bit-identical
    simulated results (the shard toggle is wall-clock-only)."""
    from dataclasses import replace

    from repro.harness.scaling import weak_params

    defaults = SimOptions.from_env(warn=False)
    noshard = replace(defaults, shard=False)
    runs = []
    for app, variant in PR7_POINTS:
        runs.append((f"{app}/{variant.name}/8p", app, variant, 8, None))
    base = registry.load("sor").default_params("tiny")
    runs.append(
        (
            "sor/csm_poll/64p-weak-tiny",
            "sor",
            CSM_POLL,
            64,
            weak_params("sor", base, 8, 64),
        )
    )
    results = {}
    for key, app, variant, nprocs, params in runs:
        # One untimed run per mode first: imports, allocator growth,
        # and page-cache warm-up otherwise land on whichever mode goes
        # first and skew the A/B.
        api.run_point(app, variant, nprocs, params=params, options=defaults)
        api.run_point(app, variant, nprocs, params=params, options=noshard)
        shard_s = noshard_s = float("inf")
        res_shard = res_noshard = None
        for _ in range(reps):
            started = time.perf_counter()
            res_shard = api.run_point(
                app, variant, nprocs, params=params, options=defaults
            )
            shard_s = min(shard_s, time.perf_counter() - started)
            started = time.perf_counter()
            res_noshard = api.run_point(
                app, variant, nprocs, params=params, options=noshard
            )
            noshard_s = min(noshard_s, time.perf_counter() - started)
        defaults.apply()
        assert res_shard.exec_time == res_noshard.exec_time, key
        assert res_shard.network_bytes == res_noshard.network_bytes, key
        assert (
            res_shard.stats.as_dict() == res_noshard.stats.as_dict()
        ), key
        results[key] = {
            "shard_s": round(shard_s, 3),
            "noshard_s": round(noshard_s, 3),
            "speedup": round(noshard_s / shard_s, 2),
            "identical_simulated_results": True,
        }
        print(
            f"  full run {key:28s}: shard {shard_s:7.3f}s  "
            f"noshard {noshard_s:7.3f}s  ({noshard_s / shard_s:4.2f}x)",
            file=sys.stderr,
        )
    return results


def pr7_main(args) -> int:
    print(
        "benchmarking the sharded event scheduler (shard vs --no-shard)",
        file=sys.stderr,
    )
    storm = _bench_storm(args.reps)
    full = _bench_pr7_full_runs(max(1, args.reps // 2))
    report = {
        "benchmark": (
            "sharded event scheduler: per-node cascade ring, recycled "
            "bucket free list, and batched bare-delay resume vs the "
            "flat calendar queue (--no-shard), which is the PR4/PR5-"
            "era engine"
        ),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "storm_ns_per_event": storm,
        "full_runs_shard_ab": full,
        "identical_results": True,
        "notes": (
            "storm_ns_per_event is the headline wall-clock-per-"
            "simulated-event metric: a queue-dominated synchronization "
            "storm with Engine.events_fired as the denominator, "
            "asserted identical across modes.  Because --no-shard "
            "restores the engine PR5 shipped, the 8p shard/noshard "
            "ratio doubles as the BENCH_PR5 regression check (>= 1.0 "
            "means no worse than the PR5 engine), and the 64p/256p "
            "ratios are the large-P win the sharding targets.  "
            "full_runs give end-to-end context — protocol and app "
            "layers dilute the queue share there — and assert "
            "bit-identical simulated results, including a 64-processor "
            "weak-scaled sor point on an auto-grown 16-node cluster."
        ),
    }
    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


def pr8_main(args) -> int:
    from repro.serving.loadgen import bench_serve

    clients = args.clients
    requests = args.serve_requests
    print(
        f"benchmarking the experiment-serving layer: {clients} concurrent "
        f"clients x {requests} requests (zipf {args.zipf}) over HTTP, "
        f"plus a {args.naive_requests}-request naive subprocess baseline",
        file=sys.stderr,
    )
    served = bench_serve(
        clients=clients,
        requests_per_client=requests,
        jobs=min(8, max(1, args.jobs)),
        zipf_s=args.zipf,
        seed=1234,
        naive_requests=args.naive_requests,
        http=True,
    )
    print(
        f"  served: {served['requests']} requests in "
        f"{served['wall_seconds']:.2f}s "
        f"({served['throughput_rps']:.1f} rps, "
        f"p50 {served['latency_ms']['p50']:.0f}ms / "
        f"p99 {served['latency_ms']['p99']:.0f}ms), "
        f"sources {served['sources']}",
        file=sys.stderr,
    )
    naive = served.get("naive_baseline")
    if naive:
        print(
            f"  naive subprocess-per-request baseline: "
            f"{naive['throughput_rps']:.2f} rps "
            f"-> speedup {served.get('speedup_over_naive')}x",
            file=sys.stderr,
        )
    failed = served["failed_requests"]
    identical = served["identical_results"]
    overlap = served["coalesce_rate"] > 0 or served["cache_hit_rate"] > 0
    fast_enough = served.get("speedup_over_naive", 0) >= 5
    report = {
        "benchmark": (
            "experiment-serving layer: asyncio HTTP front end with "
            "singleflight request coalescing, cold-point batching onto "
            "a persistent pre-forked worker pool, and the sharded "
            "on-disk result cache, vs the naive pre-serving path (one "
            "fresh subprocess per request)"
        ),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "served": served,
        "identical_results": identical,
        "acceptance": {
            "failed_requests": failed,
            "coalesce_or_hit_rate_positive": overlap,
            "speedup_over_naive_ge_5x": fast_enough,
            "served_byte_identical_to_direct": identical,
        },
        "notes": (
            "throughput_rps counts completed requests over the wall "
            "clock of the whole fleet; the zipf(1.2) schedule over a "
            "hottest-first mixed hot/cold point set means early bursts "
            "coalesce (many awaiters, one simulation) and later "
            "requests hit the sharded disk cache.  speedup_over_naive "
            "compares against one subprocess per request running the "
            "identical api.run_point call on the *hottest* (cheapest) "
            "point — the baseline's best case.  identity replays every "
            "distinct point through direct api.run_point and "
            "byte-compares the canonical result encoding; "
            "identical_results also requires every point to have "
            "served exactly one digest across all its requests."
        ),
    }
    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    if not (identical and failed == 0 and overlap and fast_enough):
        print("acceptance gate FAILED", file=sys.stderr)
        return 1
    return 0


def pr9_main(args) -> int:
    from repro.serving.loadgen import bench_serve

    clients = args.clients
    requests = args.serve_requests
    print(
        f"benchmarking serving v2: {clients} concurrent keep-alive "
        f"clients x {requests} requests (zipf {args.zipf}) vs the same "
        f"schedule over per-request connections, with a "
        f"{args.cache_max_entries}-entry cache bound and one invalid "
        f"request every {args.bad_every}",
        file=sys.stderr,
    )
    served = bench_serve(
        clients=clients,
        requests_per_client=requests,
        jobs=min(8, max(1, args.jobs)),
        zipf_s=args.zipf,
        seed=1234,
        http=True,
        compare_connections=True,
        bad_every=args.bad_every,
        cache_max_entries=args.cache_max_entries,
    )
    for mode, mode_report in served.get("modes", {}).items():
        print(
            f"  {mode}: {mode_report['completed']} requests in "
            f"{mode_report['wall_seconds']:.2f}s "
            f"({mode_report['throughput_rps']:.1f} rps, "
            f"p50 {mode_report['latency_ms']['p50']:.1f}ms / "
            f"p99 {mode_report['latency_ms']['p99']:.1f}ms)",
            file=sys.stderr,
        )
    # The acceptance ratio is against the PR 8 recorded baseline: the
    # same 500-client zipf fleet over the per-request transport as it
    # measured then (BENCH_PR8.json's served.throughput_rps).  The
    # fresh per_request mode above isolates connection reuse *alone*
    # on today's stack (both modes share the v2 hot-encode path, and
    # client + server share one event loop, so concurrency hides all
    # but the CPU cost of connection setup).
    pr8_path = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
    pr8_rps = None
    if pr8_path.exists():
        try:
            pr8_rps = json.loads(pr8_path.read_text())["served"][
                "throughput_rps"
            ]
        except (KeyError, ValueError):
            pr8_rps = None
    if pr8_rps is None:
        pr8_rps = served["modes"]["per_request"]["throughput_rps"]
    keepalive_rps = served["modes"]["keepalive"]["throughput_rps"]
    speedup_vs_pr8 = round(keepalive_rps / pr8_rps, 2) if pr8_rps else 0.0
    print(
        f"  keep-alive vs PR 8 per-request baseline ({pr8_rps} rps): "
        f"{speedup_vs_pr8}x; vs same-stack per-request: "
        f"{served.get('keepalive_speedup')}x",
        file=sys.stderr,
    )
    stats = served["server"]
    cache = stats["cache"]
    evictions = cache["stats"]["evictions"]
    negative_hits = stats["serving"]["negative_hits"]
    bound_held = cache["entries"] <= args.cache_max_entries
    failed = served["failed_requests"]
    identical = served["identical_results"]
    acceptance = {
        "failed_requests": failed,
        "keepalive_ge_2x_pr8_baseline": speedup_vs_pr8 >= 2.0,
        "served_byte_identical_to_direct": identical,
        "cache_evictions_positive": evictions > 0,
        "cache_bound_respected": bound_held,
        "negative_cache_hits_positive": negative_hits > 0,
        "invalid_rejected_not_served": (
            served["invalid_rejected"] == served["bad_requests"]
        ),
    }
    report = {
        "benchmark": (
            "serving layer v2: HTTP/1.1 keep-alive sessions vs "
            "per-request connections over the identical 500-client "
            "zipf schedule, with a bounded LRU result cache, negative-"
            "result caching of the salted invalid requests, and the "
            "hot payload tier splicing pre-encoded result bytes"
        ),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "pr8_baseline_rps": pr8_rps,
        "keepalive_rps": keepalive_rps,
        "speedup_vs_pr8_baseline": speedup_vs_pr8,
        "keepalive_speedup_same_stack": served.get("keepalive_speedup"),
        "served": served,
        "identical_results": identical,
        "acceptance": acceptance,
        "notes": (
            "speedup_vs_pr8_baseline divides keep-alive throughput by "
            "the per-request-connection throughput BENCH_PR8.json "
            "recorded for the same 500-client zipf fleet — the v2 "
            "serving path (connection reuse + the hot payload tier's "
            "pre-encoded result splice) over the v1 per-request path.  "
            "keepalive_speedup_same_stack re-runs the per-request "
            "transport on today's stack: both modes then share every "
            "v2 optimisation and one event loop runs client and "
            "server, so overlapped connects cost only their CPU and "
            "the ratio isolates connection setup alone.  Each mode's "
            "fleet byte-verifies against direct api.run_point, every "
            "Nth request is a known-invalid body that must be "
            "rejected (negative cache) and never served, and the "
            "8-entry cache bound must hold at the end of the storm."
        ),
    }
    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    if not all(
        v if isinstance(v, bool) else v == 0 for v in acceptance.values()
    ):
        print(f"acceptance gate FAILED: {acceptance}", file=sys.stderr)
        return 1
    return 0


def pr10_main(args) -> int:
    from repro import api
    from repro.harness.policies import _values_equal

    app, nprocs, network = "irreg", 8, "rdma"
    variants = ("hlrc_poll", "tmk_mc_poll")
    policies = (
        ("page", "none"),  # the paper's triple (homing stays first-touch)
        ("block256", "none"),
        ("block256", "seq"),
        ("block1k", "none"),
    )
    print(
        f"benchmarking the sharing-policy layer: {app} x {nprocs}p on "
        f"{network} at scale={args.scale}, "
        f"{len(variants)} variants x {len(policies)} policy pairs "
        f"(simulated time, deterministic)",
        file=sys.stderr,
    )
    rows = []
    gate_speedups = {}
    identical = True
    for variant in variants:
        baseline = None
        for granularity, prefetch in policies:
            result = api.run_point(
                app,
                variant,
                nprocs,
                scale=args.scale,
                network=network,
                granularity=granularity,
                prefetch=prefetch,
            )
            if baseline is None:
                baseline = result
            values_ok = _values_equal(baseline.values, result.values)
            identical = identical and values_ok
            speedup = round(baseline.exec_time / result.exec_time, 2)
            if (granularity, prefetch) == ("block256", "seq"):
                gate_speedups[variant] = speedup
            rows.append(
                {
                    "variant": variant,
                    "granularity": granularity,
                    "prefetch": prefetch,
                    "exec_time_us": result.exec_time,
                    "speedup_vs_default": speedup,
                    "prefetches": result.counter("prefetches"),
                    "values_identical": values_ok,
                }
            )
            print(
                f"  {variant:12s} {granularity:9s}+{prefetch:4s} "
                f"{result.exec_time / 1000.0:10.1f}ms  "
                f"{speedup:5.2f}x  values_ok={values_ok}",
                file=sys.stderr,
            )
    best_gate = max(gate_speedups.values())
    acceptance = {
        "fine_granularity_plus_prefetch_ge_1_2x": best_gate >= 1.2,
        "identical_results": identical,
    }
    report = {
        "benchmark": (
            "sharing-policy layer: granularity/prefetch ladder vs the "
            "default (page, demand-fault) triple on the false-sharing "
            "stressor irreg, 8 processors, rdma backend — simulated "
            "execution time (deterministic; the layer's product is "
            "simulated-time savings, not wall clock)"
        ),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "scale": args.scale,
        "rows": rows,
        "gate_speedups_block256_seq": gate_speedups,
        "best_gate_speedup": best_gate,
        "identical_results": identical,
        "acceptance": acceptance,
        "notes": (
            "speedup_vs_default divides the default triple's simulated "
            "exec_time by the policy row's, per protocol variant.  The "
            "gate row is block256+seq (fine granularity + software "
            "re-validation prefetch) and must reach >= 1.2x on at "
            "least one invalidate-based protocol; every row's "
            "simulated values must match its default row bit-for-bit "
            "(the policy contract, docs/POLICIES.md).  All quantities "
            "are simulated and deterministic, so this gate cannot "
            "flake on a loaded CI host."
        ),
    }
    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_PR10.json"
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    if not all(acceptance.values()):
        print(f"acceptance gate FAILED: {acceptance}", file=sys.stderr)
        return 1
    print(
        f"gate: block256+seq best {best_gate}x (>= 1.2x), "
        f"values identical: {identical}",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument(
        "--scale", default="tiny", choices=("tiny", "small", "large")
    )
    parser.add_argument(
        "--pr3",
        action="store_true",
        help="benchmark the shared-access fast path instead of the harness",
    )
    parser.add_argument(
        "--pr4",
        action="store_true",
        help=(
            "benchmark the event-engine/messaging overhaul (engine "
            "microbench + 8p full runs + queue-mode A/B identity)"
        ),
    )
    parser.add_argument(
        "--pr5",
        action="store_true",
        help=(
            "benchmark the bulk-region API + vectorized kernel layer "
            "(region microbench + 8p full runs kernels on/off)"
        ),
    )
    parser.add_argument(
        "--pr7",
        action="store_true",
        help=(
            "benchmark the sharded event scheduler (synchronization-"
            "storm ns/event at 8/64/256p + full-run shard A/B identity)"
        ),
    )
    parser.add_argument(
        "--pr8",
        action="store_true",
        help=(
            "load-test the experiment-serving layer (concurrent HTTP "
            "clients vs naive subprocess-per-request baseline)"
        ),
    )
    parser.add_argument(
        "--pr9",
        action="store_true",
        help=(
            "load-test serving v2 (keep-alive vs per-request "
            "connections, bounded cache, negative-result cache)"
        ),
    )
    parser.add_argument(
        "--pr10",
        action="store_true",
        help=(
            "A/B the sharing-policy layer (granularity/prefetch ladder "
            "on irreg 8p rdma; simulated-time gate, deterministic)"
        ),
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=500,
        help="--pr8/--pr9: number of concurrent synthetic clients",
    )
    parser.add_argument(
        "--serve-requests",
        type=int,
        default=2,
        help="--pr8/--pr9: sequential requests per client "
        "(--pr9 defaults to 8 so a client's session amortises)",
    )
    parser.add_argument(
        "--zipf",
        type=float,
        default=1.2,
        help="--pr8/--pr9: zipf exponent for point popularity",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=8,
        help="--pr9: server result-cache entry bound (forces eviction)",
    )
    parser.add_argument(
        "--bad-every",
        type=int,
        default=25,
        help="--pr9: salt every Nth request with a known-invalid body",
    )
    parser.add_argument(
        "--naive-requests",
        type=int,
        default=3,
        help="--pr8: requests for the subprocess-per-request baseline",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=7,
        help="best-of repetitions for the --pr3/--pr4/--pr5/--pr7 "
        "measurements",
    )
    parser.add_argument(
        "--baseline-json",
        default=None,
        help=(
            "JSON with seed-tree wall-clock timings "
            "({'points': {'app/variant/8p': seconds}}) measured on this "
            "host; enables the speedup_vs_seed fields of --pr4/--pr5"
        ),
    )
    parser.add_argument(
        "--storm-one",
        default=None,
        metavar="NPROCS,SHARD,REPS",
        help=argparse.SUPPRESS,  # internal: one --pr7 storm sample
    )
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)

    if args.storm_one:
        return storm_one_main(args.storm_one)
    if args.pr3:
        return pr3_main(args)
    if args.pr4:
        return pr4_main(args)
    if args.pr5:
        return pr5_main(args)
    if args.pr7:
        return pr7_main(args)
    if args.pr8:
        return pr8_main(args)
    if args.pr9:
        if "--serve-requests" not in (argv or sys.argv):
            args.serve_requests = 8
        return pr9_main(args)
    if args.pr10:
        if "--scale" not in (argv or sys.argv):
            args.scale = "small"
        return pr10_main(args)
    if args.out is None:
        args.out = str(
            Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
        )

    n_points = len(APPS) * (1 + len(VARIANTS) * len(COUNTS))
    print(
        f"benchmarking figure5 slice: {len(APPS)} apps x {len(VARIANTS)} "
        f"variants x {len(COUNTS)} counts ({n_points} simulation points), "
        f"scale={args.scale}",
        file=sys.stderr,
    )

    serial_sig, serial_s, _ = _generate(args.scale, jobs=1, cache=None)
    print(f"  serial   (jobs=1, no cache): {serial_s:8.2f}s", file=sys.stderr)

    parallel_sig, parallel_s, _ = _generate(
        args.scale, jobs=args.jobs, cache=None
    )
    print(
        f"  parallel (jobs={args.jobs}, no cache): {parallel_s:8.2f}s",
        file=sys.stderr,
    )

    with tempfile.TemporaryDirectory(prefix="repro-dsm-bench-") as tmp:
        cache_dir = Path(tmp)
        cold_sig, cold_s, cold_ctx = _generate(
            args.scale, jobs=1, cache=ResultCache(cache_dir=cache_dir)
        )
        warm_sig, warm_s, warm_ctx = _generate(
            args.scale, jobs=1, cache=ResultCache(cache_dir=cache_dir)
        )
    print(
        f"  cold cache: {cold_s:8.2f}s ({cold_ctx.cache.stats}); "
        f"warm cache: {warm_s:8.2f}s ({warm_ctx.cache.stats})",
        file=sys.stderr,
    )

    assert serial_sig == parallel_sig, "parallel results diverge from serial"
    assert serial_sig == cold_sig, "cached-run results diverge from serial"
    assert serial_sig == warm_sig, "cache-hit results diverge from serial"
    print("  all four passes bit-identical", file=sys.stderr)

    report = {
        "benchmark": "figure5-slice wall clock (serial vs --jobs vs cache)",
        "slice": {
            "apps": list(APPS),
            "variants": [v.name for v in VARIANTS],
            "counts": list(COUNTS),
            "scale": args.scale,
            "simulation_points": n_points,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "seconds": {
            "serial_jobs1": round(serial_s, 3),
            f"parallel_jobs{args.jobs}": round(parallel_s, 3),
            "cold_cache_jobs1": round(cold_s, 3),
            "warm_cache_jobs1": round(warm_s, 3),
        },
        "speedup_over_serial": {
            f"parallel_jobs{args.jobs}": round(serial_s / parallel_s, 2),
            "warm_cache": round(serial_s / warm_s, 2),
        },
        "cache": {
            "cold": {
                "hits": cold_ctx.cache.stats.hits,
                "misses": cold_ctx.cache.stats.misses,
            },
            "warm": {
                "hits": warm_ctx.cache.stats.hits,
                "misses": warm_ctx.cache.stats.misses,
            },
        },
        "identical_results": True,
        "notes": (
            "process-pool gains scale with physical cores: on a "
            f"{os.cpu_count()}-core host, expect --jobs N to approach "
            "min(N, cores)x on the dominant points; on 1 core the pool "
            "only adds overhead and the cache provides the win"
        ),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
