"""Wall-clock benchmark for the parallel harness and result cache.

Times one fixed Figure-5 slice three ways:

1. **serial** — ``jobs=1``, cache disabled (the pre-PR baseline path);
2. **parallel** — ``jobs=N`` process-pool fan-out, cache disabled;
3. **warm cache** — ``jobs=1`` against a cache populated by pass 1.

All three must produce identical speedup curves (asserted here; the
same guarantee is locked in by ``tests/test_parallel_harness.py``), so
any wall-clock difference is pure harness overhead.  Results land in
``BENCH_PR2.json`` together with host provenance — process-pool gains
scale with physical cores, so absolute numbers are only comparable on
the recorded host.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        [--jobs N] [--scale tiny] [--out BENCH_PR2.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.config import CSM_POLL, TMK_MC_POLL
from repro.harness import figure5
from repro.harness.cache import ResultCache
from repro.harness.runner import ExperimentContext

APPS = ("sor", "water", "gauss")
VARIANTS = (CSM_POLL, TMK_MC_POLL)
COUNTS = (1, 4, 8, 16)


def _curves_signature(curves):
    return [(c.app, c.variant, sorted(c.points.items())) for c in curves]


def _generate(scale: str, jobs: int, cache) -> tuple:
    ctx = ExperimentContext(scale=scale, jobs=jobs, cache=cache)
    started = time.perf_counter()
    curves = figure5.generate(
        ctx, apps=APPS, variants=VARIANTS, counts=COUNTS
    )
    elapsed = time.perf_counter() - started
    return _curves_signature(curves), elapsed, ctx


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument(
        "--scale", default="tiny", choices=("tiny", "small", "large")
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR2.json"),
    )
    args = parser.parse_args(argv)

    n_points = len(APPS) * (1 + len(VARIANTS) * len(COUNTS))
    print(
        f"benchmarking figure5 slice: {len(APPS)} apps x {len(VARIANTS)} "
        f"variants x {len(COUNTS)} counts ({n_points} simulation points), "
        f"scale={args.scale}",
        file=sys.stderr,
    )

    serial_sig, serial_s, _ = _generate(args.scale, jobs=1, cache=None)
    print(f"  serial   (jobs=1, no cache): {serial_s:8.2f}s", file=sys.stderr)

    parallel_sig, parallel_s, _ = _generate(
        args.scale, jobs=args.jobs, cache=None
    )
    print(
        f"  parallel (jobs={args.jobs}, no cache): {parallel_s:8.2f}s",
        file=sys.stderr,
    )

    with tempfile.TemporaryDirectory(prefix="repro-dsm-bench-") as tmp:
        cache_dir = Path(tmp)
        cold_sig, cold_s, cold_ctx = _generate(
            args.scale, jobs=1, cache=ResultCache(cache_dir=cache_dir)
        )
        warm_sig, warm_s, warm_ctx = _generate(
            args.scale, jobs=1, cache=ResultCache(cache_dir=cache_dir)
        )
    print(
        f"  cold cache: {cold_s:8.2f}s ({cold_ctx.cache.stats}); "
        f"warm cache: {warm_s:8.2f}s ({warm_ctx.cache.stats})",
        file=sys.stderr,
    )

    assert serial_sig == parallel_sig, "parallel results diverge from serial"
    assert serial_sig == cold_sig, "cached-run results diverge from serial"
    assert serial_sig == warm_sig, "cache-hit results diverge from serial"
    print("  all four passes bit-identical", file=sys.stderr)

    report = {
        "benchmark": "figure5-slice wall clock (serial vs --jobs vs cache)",
        "slice": {
            "apps": list(APPS),
            "variants": [v.name for v in VARIANTS],
            "counts": list(COUNTS),
            "scale": args.scale,
            "simulation_points": n_points,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "seconds": {
            "serial_jobs1": round(serial_s, 3),
            f"parallel_jobs{args.jobs}": round(parallel_s, 3),
            "cold_cache_jobs1": round(cold_s, 3),
            "warm_cache_jobs1": round(warm_s, 3),
        },
        "speedup_over_serial": {
            f"parallel_jobs{args.jobs}": round(serial_s / parallel_s, 2),
            "warm_cache": round(serial_s / warm_s, 2),
        },
        "cache": {
            "cold": {
                "hits": cold_ctx.cache.stats.hits,
                "misses": cold_ctx.cache.stats.misses,
            },
            "warm": {
                "hits": warm_ctx.cache.stats.hits,
                "misses": warm_ctx.cache.stats.misses,
            },
        },
        "identical_results": True,
        "notes": (
            "process-pool gains scale with physical cores: on a "
            f"{os.cpu_count()}-core host, expect --jobs N to approach "
            "min(N, cores)x on the dominant points; on 1 core the pool "
            "only adds overhead and the cache provides the win"
        ),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
